// Golden byte-identity fingerprints for the decentralized runtime.
//
// ISSUE 7 / ROADMAP item 2 reworks the MessageBus into pooled storage
// with batch-drained flat inboxes and restructures the matching loops
// into SoA passes. The acceptance bar is *byte-identical per-seed
// behavior*: same bus rounds, same message counts, same profit bits,
// and the same trace/CSV export bytes as the pre-rework runtime. These
// fingerprints were generated from the seed-era (pre-pooling) code and
// must never drift — a mismatch means the rework changed observable
// behavior, not just performance.
//
// Three probes per seed:
//  * decentralized — fault-free protocol run with a trace recorder
//    installed (hashes cover the Chrome-trace JSON and round CSV bytes),
//  * incremental   — carry-over/hysteresis/rematch against a re-rolled
//    scenario, seeded from the decentralized allocation,
//  * faulted       — loss+crash+degradation plan (dup/delay are
//    bus-level mechanisms, pinned by BusFaultStreamPinned), recovery
//    counters included, so the fault-path draw order is pinned too.
//
// Regenerating (only legitimate after an intentional semantic change):
//   DMRA_GOLDEN_REGEN=1 ./build/tests/core_test
//     --gtest_filter='GoldenRuntime.*' 2>/dev/null
// then paste the printed rows over kGolden below and say why in the PR.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include <vector>

#include "core/decentralized.hpp"
#include "core/incremental.hpp"
#include "net/bus.hpp"
#include "core/solver.hpp"
#include "mec/allocation.hpp"
#include "obs/recorder.hpp"
#include "sim/faults.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

constexpr std::size_t kUes = 300;
constexpr int kSeeds = 10;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t profit_bits(const Scenario& s, const Allocation& a) {
  return std::bit_cast<std::uint64_t>(total_profit(s, a));
}

struct GoldenRow {
  std::uint64_t seed;
  // Fault-free decentralized run (with tracing installed).
  std::uint64_t dec_bus_rounds;
  std::uint64_t dec_messages_sent;
  std::uint64_t dec_matching_rounds;
  std::uint64_t dec_profit_bits;
  std::uint64_t dec_trace_hash;  ///< FNV-1a of to_chrome_trace_json()
  std::uint64_t dec_csv_hash;    ///< FNV-1a of to_round_csv()
  // Incremental step onto the re-rolled scenario.
  std::uint64_t inc_kept;
  std::uint64_t inc_released;
  std::uint64_t inc_invalidated;
  std::uint64_t inc_rematch_rounds;
  std::uint64_t inc_profit_bits;
  // Faulted decentralized run (loss+crash+degrade).
  std::uint64_t flt_bus_rounds;
  std::uint64_t flt_messages_sent;
  std::uint64_t flt_dropped;
  std::uint64_t flt_duplicated;
  std::uint64_t flt_delayed;
  std::uint64_t flt_orphaned;
  std::uint64_t flt_cloud_fallbacks;
  std::uint64_t flt_profit_bits;
};

GoldenRow run_probes(std::uint64_t seed) {
  GoldenRow row{};
  row.seed = seed;

  ScenarioConfig cfg;
  cfg.num_ues = kUes;
  const Scenario s = generate_scenario(cfg, seed);

  {
    obs::TraceRecorder rec;
    obs::ScopedTraceRecorder install(&rec);
    const DecentralizedResult dec = run_decentralized_dmra(s);
    row.dec_bus_rounds = dec.bus.rounds;
    row.dec_messages_sent = dec.bus.messages_sent;
    row.dec_matching_rounds = dec.dmra.rounds;
    row.dec_profit_bits = profit_bits(s, dec.dmra.allocation);
    row.dec_trace_hash = fnv1a(rec.to_chrome_trace_json());
    row.dec_csv_hash = fnv1a(rec.to_round_csv());

    // The incremental step re-rolls the scenario (same population size,
    // fresh positions) and carries the decentralized allocation forward.
    const Scenario s2 = generate_scenario(cfg, seed + 1000);
    IncrementalConfig ic;
    ic.hysteresis_margin = 0.0;  // exercise voluntary release too
    const IncrementalResult inc =
        solve_incremental_dmra(s2, dec.dmra.allocation, ic);
    row.inc_kept = inc.kept;
    row.inc_released = inc.released;
    row.inc_invalidated = inc.invalidated;
    row.inc_rematch_rounds = inc.rematch.rounds;
    row.inc_profit_bits = profit_bits(s2, inc.allocation);
  }

  {
    // Protocol-level faults: loss + crash/recovery + degradation (the
    // full decentralized fault surface; duplication/delay are bus-level
    // mechanisms pinned separately by BusFaultStreamPinned below).
    FaultSpec spec;
    spec.loss = 0.08;
    spec.crashes = 2;
    spec.crash_round = 3;
    spec.down_rounds = 6;
    spec.degradations = 1;
    spec.seed = seed;
    const FaultPlan plan = make_fault_plan(spec, s.num_bss());
    NetworkConditions net;
    net.seed = seed;
    net.faults = &plan;
    const DecentralizedResult flt = run_decentralized_dmra(s, {}, net);
    row.flt_bus_rounds = flt.bus.rounds;
    row.flt_messages_sent = flt.bus.messages_sent;
    row.flt_dropped = flt.bus.messages_dropped;
    row.flt_duplicated = flt.bus.messages_duplicated;
    row.flt_delayed = flt.bus.messages_delayed;
    row.flt_orphaned = flt.recovery.orphaned_ues;
    row.flt_cloud_fallbacks = flt.recovery.cloud_fallbacks;
    row.flt_profit_bits = profit_bits(s, flt.dmra.allocation);
  }
  return row;
}

void print_row(const GoldenRow& r) {
  std::printf(
      "    {%lluull, %lluull, %lluull, %lluull, 0x%llxull, 0x%llxull, "
      "0x%llxull,\n     %lluull, %lluull, %lluull, %lluull, 0x%llxull,\n"
      "     %lluull, %lluull, %lluull, %lluull, %lluull, %lluull, %lluull, "
      "0x%llxull},\n",
      static_cast<unsigned long long>(r.seed),
      static_cast<unsigned long long>(r.dec_bus_rounds),
      static_cast<unsigned long long>(r.dec_messages_sent),
      static_cast<unsigned long long>(r.dec_matching_rounds),
      static_cast<unsigned long long>(r.dec_profit_bits),
      static_cast<unsigned long long>(r.dec_trace_hash),
      static_cast<unsigned long long>(r.dec_csv_hash),
      static_cast<unsigned long long>(r.inc_kept),
      static_cast<unsigned long long>(r.inc_released),
      static_cast<unsigned long long>(r.inc_invalidated),
      static_cast<unsigned long long>(r.inc_rematch_rounds),
      static_cast<unsigned long long>(r.inc_profit_bits),
      static_cast<unsigned long long>(r.flt_bus_rounds),
      static_cast<unsigned long long>(r.flt_messages_sent),
      static_cast<unsigned long long>(r.flt_dropped),
      static_cast<unsigned long long>(r.flt_duplicated),
      static_cast<unsigned long long>(r.flt_delayed),
      static_cast<unsigned long long>(r.flt_orphaned),
      static_cast<unsigned long long>(r.flt_cloud_fallbacks),
      static_cast<unsigned long long>(r.flt_profit_bits));
}

// Fingerprints generated from the pre-pooling runtime (see header).
constexpr GoldenRow kGolden[kSeeds] = {
    {1ull, 26ull, 13527ull, 6ull, 0x40abb753a2515433ull, 0xa564576655d728daull, 0x62d2eee12d4d5d6full,
     19ull, 93ull, 188ull, 7ull, 0x40aca1f590f2477dull,
     78ull, 46705ull, 3757ull, 0ull, 0ull, 15ull, 0ull, 0x40ab7bb005f8b2baull},
    {2ull, 26ull, 13328ull, 6ull, 0x40ac49fe580e3a9cull, 0x1195ac9cdd9ac3a7ull, 0xc1b32336d4d4adcaull,
     26ull, 90ull, 184ull, 7ull, 0x40ac2b4596fd3a16ull,
     86ull, 50066ull, 3989ull, 0ull, 0ull, 29ull, 0ull, 0x40ac1f7003f58fc8ull},
    {3ull, 26ull, 13879ull, 6ull, 0x40abe812b0115557ull, 0xb1eb888c0ff2314ull, 0x228a1cdad681b2cfull,
     19ull, 91ull, 190ull, 9ull, 0x40ac47b6220141c6ull,
     86ull, 51581ull, 4207ull, 0ull, 0ull, 19ull, 0ull, 0x40abbef655eab737ull},
    {4ull, 30ull, 14281ull, 7ull, 0x40ac5d895fe42c9aull, 0xa512b4b3f2ba78dfull, 0x5c2e1a8a1146c5cdull,
     16ull, 92ull, 192ull, 8ull, 0x40ac8d4c35457c34ull,
     86ull, 51178ull, 4087ull, 0ull, 0ull, 29ull, 0ull, 0x40abeef46d8b96b0ull},
    {5ull, 30ull, 14380ull, 7ull, 0x40acc0d13b25345aull, 0x9f10a9af23d9587dull, 0x36cd5367e9b516bcull,
     14ull, 94ull, 192ull, 7ull, 0x40ac82f0f2e35b8cull,
     78ull, 47275ull, 3803ull, 0ull, 0ull, 21ull, 0ull, 0x40ac78111cd65488ull},
    {6ull, 34ull, 14440ull, 8ull, 0x40acb00b910906d7ull, 0x9334a9f93c6154e6ull, 0xc351b03741449b65ull,
     6ull, 90ull, 204ull, 7ull, 0x40ac3ddb3af8ffc1ull,
     74ull, 44651ull, 3499ull, 0ull, 0ull, 19ull, 0ull, 0x40ac709e3c298f33ull},
    {7ull, 30ull, 14724ull, 7ull, 0x40ac750fb384d2b8ull, 0x5d3ea6b79d8e6e33ull, 0x672751acd7202dfcull,
     10ull, 101ull, 189ull, 7ull, 0x40abdee4d27ceed6ull,
     78ull, 46494ull, 3828ull, 0ull, 0ull, 16ull, 0ull, 0x40ac4c2034b707faull},
    {8ull, 22ull, 13471ull, 5ull, 0x40ac04c4f46a04abull, 0x8319a8f099da4c88ull, 0x7d5d70cb300615d2ull,
     11ull, 75ull, 214ull, 7ull, 0x40ac1d17ed504f62ull,
     86ull, 51241ull, 4111ull, 0ull, 0ull, 17ull, 0ull, 0x40abb2c314cd5020ull},
    {9ull, 38ull, 14050ull, 9ull, 0x40ac3710295753fcull, 0x2261cb64b42a48c1ull, 0x412533899b0b74e3ull,
     7ull, 87ull, 206ull, 8ull, 0x40abc1b1fa94571cull,
     70ull, 41122ull, 3258ull, 0ull, 0ull, 25ull, 0ull, 0x40abfe3c57d5e0a1ull},
    {10ull, 34ull, 15092ull, 8ull, 0x40ac02b7df96341eull, 0x199ed149873cc04bull, 0xd480c6a9dc6c6c29ull,
     8ull, 98ull, 194ull, 6ull, 0x40abe3fb9c6dbaf6ull,
     82ull, 50202ull, 3903ull, 0ull, 0ull, 19ull, 0ull, 0x40abd00def528e65ull},
};

// See BusFaultStreamPinned below; regenerated alongside kGolden.
constexpr std::uint64_t kBusFaultStreamHash = 0x4fdb0e93353ec4adull;

TEST(GoldenRuntime, ByteIdenticalAcrossSeeds) {
  if (std::getenv("DMRA_GOLDEN_REGEN") != nullptr) {
    for (int seed = 1; seed <= kSeeds; ++seed)
      print_row(run_probes(static_cast<std::uint64_t>(seed)));
    GTEST_SKIP() << "regen mode: rows printed to stdout";
  }
  for (const GoldenRow& want : kGolden) {
    const GoldenRow got = run_probes(want.seed);
    SCOPED_TRACE("seed " + std::to_string(want.seed));
    EXPECT_EQ(got.dec_bus_rounds, want.dec_bus_rounds);
    EXPECT_EQ(got.dec_messages_sent, want.dec_messages_sent);
    EXPECT_EQ(got.dec_matching_rounds, want.dec_matching_rounds);
    EXPECT_EQ(got.dec_profit_bits, want.dec_profit_bits);
    EXPECT_EQ(got.dec_trace_hash, want.dec_trace_hash);
    EXPECT_EQ(got.dec_csv_hash, want.dec_csv_hash);
    EXPECT_EQ(got.inc_kept, want.inc_kept);
    EXPECT_EQ(got.inc_released, want.inc_released);
    EXPECT_EQ(got.inc_invalidated, want.inc_invalidated);
    EXPECT_EQ(got.inc_rematch_rounds, want.inc_rematch_rounds);
    EXPECT_EQ(got.inc_profit_bits, want.inc_profit_bits);
    EXPECT_EQ(got.flt_bus_rounds, want.flt_bus_rounds);
    EXPECT_EQ(got.flt_messages_sent, want.flt_messages_sent);
    EXPECT_EQ(got.flt_dropped, want.flt_dropped);
    EXPECT_EQ(got.flt_duplicated, want.flt_duplicated);
    EXPECT_EQ(got.flt_delayed, want.flt_delayed);
    EXPECT_EQ(got.flt_orphaned, want.flt_orphaned);
    EXPECT_EQ(got.flt_cloud_fallbacks, want.flt_cloud_fallbacks);
    EXPECT_EQ(got.flt_profit_bits, want.flt_profit_bits);
  }
}

// Bus-level pin of the full fault draw order (drop → duplicate → delay)
// and the delayed-before-fresh delivery rule: a scripted send schedule
// under an armed LinkFaults must produce the exact same delivered stream
// — (to, seq, sent_round, payload) per take_inbox, in order — after the
// pooled-inbox rework as before it.
TEST(GoldenRuntime, BusFaultStreamPinned) {
  constexpr std::size_t kAgents = 16;
  constexpr std::uint64_t kRounds = 24;
  MessageBus<std::uint32_t> bus;
  std::vector<AgentId> agents;
  for (std::size_t a = 0; a < kAgents; ++a) agents.push_back(bus.register_agent());
  LinkFaults faults;
  faults.drop_probability = 0.1;
  faults.duplicate_probability = 0.1;
  faults.delay_probability = 0.15;
  faults.max_delay_rounds = 3;
  bus.set_faults(faults, /*seed=*/42);

  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  std::uint32_t payload = 0;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::size_t m = 0; m < 3 * kAgents; ++m)
      bus.send(agents[m % kAgents], agents[(m * 5 + 1) % kAgents], payload++);
    bus.deliver();
    for (const AgentId id : agents) {
      const auto inbox = bus.take_inbox(id);
      for (const auto& env : inbox) {
        mix(env.to.idx());
        mix(env.seq);
        mix(env.sent_round);
        mix(env.payload);
      }
    }
  }
  // Drain what the delay faults still hold in flight.
  while (bus.in_flight() > 0) {
    bus.deliver();
    for (const AgentId id : agents) {
      const auto inbox = bus.take_inbox(id);
      for (const auto& env : inbox) {
        mix(env.to.idx());
        mix(env.seq);
        mix(env.sent_round);
        mix(env.payload);
      }
    }
  }
  mix(bus.stats().messages_sent);
  mix(bus.stats().messages_delivered);
  mix(bus.stats().messages_dropped);
  mix(bus.stats().messages_duplicated);
  mix(bus.stats().messages_delayed);
  if (std::getenv("DMRA_GOLDEN_REGEN") != nullptr) {
    std::printf("bus fault stream hash: 0x%llxull\n",
                static_cast<unsigned long long>(h));
    GTEST_SKIP() << "regen mode";
  }
  EXPECT_EQ(h, kBusFaultStreamHash);
}

}  // namespace
}  // namespace dmra
