// Protocol hardening under injected faults: the zero-fault golden
// contract, graceful degradation under loss/crash schedules, orphan
// accounting, auditor cleanliness, and per-seed determinism.
#include <gtest/gtest.h>

#include "check/invariant_auditor.hpp"
#include "core/decentralized.hpp"
#include "mec/audit.hpp"
#include "net/fault_plan.hpp"
#include "obs/recorder.hpp"
#include "sim/faults.hpp"
#include "sim/feasibility.hpp"
#include "sim/metrics.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

Scenario test_scenario(std::size_t ues = 300, std::uint64_t seed = 9) {
  ScenarioConfig cfg;
  cfg.num_ues = ues;
  return generate_scenario(cfg, seed);
}

// The golden contract from net/fault_plan.hpp: an attached plan with
// any() == false must be indistinguishable from no plan at all — same
// allocation, same protocol counters, same bus traffic, and a
// byte-identical trace export.
TEST(FaultInjection, ZeroFaultPlanIsByteIdenticalToNoPlan) {
  const Scenario s = test_scenario();

  obs::TraceRecorder baseline_trace;
  DecentralizedResult baseline = [&] {
    obs::ScopedTraceRecorder scope(&baseline_trace);
    return run_decentralized_dmra(s);
  }();

  const FaultPlan empty_plan;
  ASSERT_FALSE(empty_plan.any());
  NetworkConditions net;
  net.faults = &empty_plan;
  obs::TraceRecorder planned_trace;
  DecentralizedResult planned = [&] {
    obs::ScopedTraceRecorder scope(&planned_trace);
    return run_decentralized_dmra(s, {}, net);
  }();

  EXPECT_EQ(planned.dmra.allocation, baseline.dmra.allocation);
  EXPECT_EQ(planned.dmra.rounds, baseline.dmra.rounds);
  EXPECT_EQ(planned.dmra.proposals_sent, baseline.dmra.proposals_sent);
  EXPECT_EQ(planned.dmra.rejections, baseline.dmra.rejections);
  EXPECT_EQ(planned.bus.messages_sent, baseline.bus.messages_sent);
  EXPECT_EQ(planned.bus.messages_delivered, baseline.bus.messages_delivered);
  EXPECT_EQ(planned.bus.messages_dropped, 0u);
  EXPECT_EQ(planned.recovery.orphaned_ues, 0u);
  EXPECT_EQ(planned_trace.to_chrome_trace_json(), baseline_trace.to_chrome_trace_json());
}

TEST(FaultInjection, LossOnlyPlanDegradesGracefully) {
  const Scenario s = test_scenario(400);
  const double clean = total_profit(s, run_decentralized_dmra(s).dmra.allocation);

  FaultPlan plan;
  plan.link.drop_probability = 0.2;
  NetworkConditions net;
  net.seed = 7;
  net.faults = &plan;
  const DecentralizedResult r = run_decentralized_dmra(s, {}, net);

  const FeasibilityReport report = check_feasibility(s, r.dmra.allocation);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_GT(r.bus.messages_dropped, 0u);
  EXPECT_GT(total_profit(s, r.dmra.allocation), 0.8 * clean);
}

// Loss + two staggered never-recovering crashes: the acceptance scenario
// of the resilience layer. The run must terminate, stay feasible, and
// account for every orphaning event exactly once.
TEST(FaultInjection, CrashesTerminateFeasiblyAndConserveOrphans) {
  const Scenario s = test_scenario();
  FaultSpec spec;
  spec.loss = 0.2;
  spec.crashes = 2;
  spec.crash_round = 2;
  spec.seed = 13;
  const FaultyDmraAllocator faulty(spec);
  const DecentralizedResult r = faulty.run(s);

  const FeasibilityReport report = check_feasibility(s, r.dmra.allocation);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_EQ(r.recovery.bs_crashes, 2u);
  EXPECT_EQ(r.recovery.bs_recoveries, 0u);  // down_rounds = 0: never recovers
  EXPECT_GT(r.recovery.orphaned_ues, 0u);
  EXPECT_EQ(r.recovery.orphaned_ues, r.recovery.repaired_in_protocol +
                                         r.recovery.repaired_by_rematch +
                                         r.recovery.cloud_fallbacks);
  // Two dead cells still leave most of the deployment serving.
  EXPECT_GT(r.dmra.allocation.num_served(), s.num_ues() / 2);
}

TEST(FaultInjection, RecoveredBsAndDegradationAreScheduled) {
  const Scenario s = test_scenario(200);
  FaultSpec spec;
  spec.crashes = 1;
  spec.crash_round = 2;
  spec.down_rounds = 4;  // comes back cold
  spec.degradations = 1;
  spec.degrade_factor = 0.5;
  spec.degrade_round = 3;
  spec.seed = 21;
  const DecentralizedResult r = FaultyDmraAllocator(spec).run(s);

  EXPECT_EQ(r.recovery.bs_crashes, 1u);
  EXPECT_EQ(r.recovery.bs_recoveries, 1u);
  EXPECT_EQ(r.recovery.capacity_degradations, 1u);
  EXPECT_TRUE(check_feasibility(s, r.dmra.allocation).ok);
}

// Every fault-mode round report must satisfy the invariant auditor —
// crashing BSs, clamped repair ledgers and all.
TEST(FaultInjection, AuditorRunsCleanUnderFaults) {
  const Scenario s = test_scenario(250);
  FaultSpec spec;
  spec.loss = 0.15;
  spec.crashes = 2;
  spec.crash_round = 2;
  spec.seed = 5;

  check::InvariantAuditor auditor;
  DecentralizedResult r = [&] {
    audit::ScopedAuditObserver scope(&auditor);
    return FaultyDmraAllocator(spec).run(s);
  }();

  EXPECT_TRUE(auditor.findings().ok)
      << (auditor.findings().violations.empty() ? ""
                                                : auditor.findings().violations[0]);
#if defined(DMRA_AUDIT_ENABLED) && DMRA_AUDIT_ENABLED
  EXPECT_GT(auditor.rounds_audited(), 0u);
#endif
  EXPECT_TRUE(check_feasibility(s, r.dmra.allocation).ok);
}

TEST(FaultInjection, DeterministicPerSeedAndSeedSensitive) {
  const Scenario s = test_scenario(200);
  FaultSpec spec;
  spec.loss = 0.2;
  spec.crashes = 1;
  spec.crash_round = 3;
  spec.seed = 11;
  const FaultyDmraAllocator a(spec);
  const DecentralizedResult r1 = a.run(s);
  const DecentralizedResult r2 = a.run(s);
  EXPECT_EQ(r1.dmra.allocation, r2.dmra.allocation);
  EXPECT_EQ(r1.dmra.rounds, r2.dmra.rounds);
  EXPECT_EQ(r1.bus.messages_dropped, r2.bus.messages_dropped);
  EXPECT_EQ(r1.recovery.orphaned_ues, r2.recovery.orphaned_ues);

  spec.seed = 12;
  const DecentralizedResult r3 = FaultyDmraAllocator(spec).run(s);
  EXPECT_NE(r1.bus.messages_dropped, r3.bus.messages_dropped);
}

TEST(FaultInjection, RejectsLegacyLossCombinedWithPlan) {
  const Scenario s = test_scenario(50);
  FaultPlan plan;
  plan.link.drop_probability = 0.1;
  NetworkConditions net;
  net.drop_probability = 0.1;  // legacy knob — mutually exclusive with a plan
  net.faults = &plan;
  EXPECT_THROW(run_decentralized_dmra(s, {}, net), ContractViolation);
}

TEST(FaultInjection, FaultSpecParserRoundTrips) {
  const FaultSpec spec = parse_fault_spec(
      "loss=0.1,dup=0.02,delay=0.05,delay-max=3,crashes=2,crash-round=4,"
      "down-rounds=8,degrade=1,degrade-factor=0.25,degrade-round=6,seed=7");
  EXPECT_DOUBLE_EQ(spec.loss, 0.1);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(spec.delay, 0.05);
  EXPECT_EQ(spec.max_delay_rounds, 3u);
  EXPECT_EQ(spec.crashes, 2u);
  EXPECT_EQ(spec.crash_round, 4u);
  EXPECT_EQ(spec.down_rounds, 8u);
  EXPECT_EQ(spec.degradations, 1u);
  EXPECT_DOUBLE_EQ(spec.degrade_factor, 0.25);
  EXPECT_EQ(spec.degrade_round, 6u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.any());
  EXPECT_FALSE(parse_fault_spec("").any());
  EXPECT_THROW(parse_fault_spec("loss"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("mystery=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("loss=abc"), std::invalid_argument);

  const FaultPlan plan = make_fault_plan(spec, /*num_bss=*/7);
  EXPECT_NO_THROW(plan.validate(7));
  EXPECT_EQ(plan.outages.size(), 2u);
  EXPECT_EQ(plan.degradations.size(), 1u);
  // Same spec, same deployment — same victims.
  const FaultPlan again = make_fault_plan(spec, 7);
  ASSERT_EQ(again.outages.size(), 2u);
  EXPECT_EQ(again.outages[0].bs, plan.outages[0].bs);
  EXPECT_EQ(again.outages[1].bs, plan.outages[1].bs);
}

}  // namespace
}  // namespace dmra
