#include "core/preference.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "../test_util.hpp"
#include "mec/resources.hpp"
#include "util/rng.hpp"

namespace dmra {
namespace {

/// ResourceView over a live ResourceState (what the direct solver uses).
class StateView final : public ResourceView {
 public:
  explicit StateView(const ResourceState& s) : s_(&s) {}
  std::uint32_t remaining_crus(BsId i, ServiceId j) const override {
    return s_->remaining_crus(i, j);
  }
  std::uint32_t remaining_rrbs(BsId i) const override { return s_->remaining_rrbs(i); }

 private:
  const ResourceState* s_;
};

TEST(UePreference, MatchesEq17) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const StateView view(rs);
  const UeId u{0};
  const BsId i{0};
  const double rho = 150.0;
  const double expected =
      s.price(u, i) + rho / (rs.remaining_crus(i, s.ue(u).service) + rs.remaining_rrbs(i));
  EXPECT_DOUBLE_EQ(ue_preference_value(s, view, u, i, rho), expected);
}

TEST(UePreference, RhoZeroIsPureprice) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const StateView view(rs);
  EXPECT_DOUBLE_EQ(ue_preference_value(s, view, UeId{0}, BsId{0}, 0.0),
                   s.price(UeId{0}, BsId{0}));
}

TEST(UePreference, ExhaustedBsIsInfinitelyUnattractive) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4, /*rrbs=*/1);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4, 2e6);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4, 2e6);
  const Scenario s = ms.build();
  ResourceState rs(s);
  rs.commit(UeId{1}, BsId{0});  // consumes all 4 CRUs and the only RRB
  const StateView view(rs);
  EXPECT_TRUE(std::isinf(ue_preference_value(s, view, UeId{0}, BsId{0}, 10.0)));
  // With rho = 0 the resource term is absent and the price stays finite.
  EXPECT_TRUE(std::isfinite(ue_preference_value(s, view, UeId{0}, BsId{0}, 0.0)));
}

TEST(UePreference, LessLoadedBsWinsAtEqualPrice) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {100, 0});
  ms.add_ue(sp, {50, 0}, ServiceId{0});  // equidistant → equal price
  ms.add_ue(sp, {40, 10}, ServiceId{0});
  const Scenario s = ms.build();
  ResourceState rs(s);
  rs.commit(UeId{1}, BsId{0});  // load BS 0
  const StateView view(rs);
  EXPECT_GT(ue_preference_value(s, view, UeId{0}, BsId{0}, 100.0),
            ue_preference_value(s, view, UeId{0}, BsId{1}, 100.0));
}

TEST(ViewCanServe, ChecksEveryDimension) {
  const Scenario s = test::two_bs_scenario();
  ResourceState rs(s);
  const StateView view(rs);
  EXPECT_TRUE(view_can_serve(s, view, UeId{0}, BsId{0}));
  EXPECT_EQ(view_can_serve(s, view, UeId{0}, BsId{0}), rs.can_serve(UeId{0}, BsId{0}));
}

TEST(LiveCoverage, TracksResourceDepletion) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);
  ms.add_bs(sp, {100, 0}, /*cru=*/4);
  ms.add_ue(sp, {50, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {50, 10}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  const StateView view(rs);
  EXPECT_EQ(live_coverage_count(s, view, UeId{0}), 2u);
  rs.commit(UeId{1}, BsId{0});  // exhausts BS 0's service-0 CRUs
  EXPECT_EQ(live_coverage_count(s, view, UeId{0}), 1u);
}

TEST(ChooseProposal, PicksSmallestPreferenceValue) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {300, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0});  // nearer to BS 0 → cheaper
  const Scenario s = ms.build();
  ResourceState rs(s);
  const StateView view(rs);
  std::vector<BsId> b_u{BsId{0}, BsId{1}};
  EXPECT_EQ(choose_proposal(s, view, UeId{0}, b_u, 100.0), (BsId{0}));
  EXPECT_EQ(b_u.size(), 2u);  // nothing erased — both serviceable
}

TEST(ChooseProposal, ErasesUnserviceableAndFallsBack) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);
  ms.add_bs(sp, {300, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  rs.commit(UeId{1}, BsId{0});  // BS 0 out of CRUs
  const StateView view(rs);
  std::vector<BsId> b_u{BsId{0}, BsId{1}};
  // With a small rho the near (cheap) BS 0 is still the argmin; it is
  // unserviceable, so Alg. 1 line 10 erases it and falls back to BS 1.
  EXPECT_EQ(choose_proposal(s, view, UeId{0}, b_u, 10.0), (BsId{1}));
  EXPECT_EQ(b_u, (std::vector<BsId>{BsId{1}}));  // BS 0 permanently erased
}

TEST(ChooseProposal, DoesNotEraseBsesItNeverPicked) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);
  ms.add_bs(sp, {300, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  rs.commit(UeId{1}, BsId{0});
  const StateView view(rs);
  std::vector<BsId> b_u{BsId{0}, BsId{1}};
  // A huge rho makes the exhausted BS 0 infinitely unattractive: BS 1 is
  // the argmin directly, so BS 0 stays in B_u (only picked-and-failed BSs
  // are deleted).
  EXPECT_EQ(choose_proposal(s, view, UeId{0}, b_u, 1e6), (BsId{1}));
  EXPECT_EQ(b_u.size(), 2u);
}

TEST(ChooseProposal, ReturnsNulloptWhenExhausted) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);
  ms.add_ue(sp, {100, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState rs(s);
  rs.commit(UeId{1}, BsId{0});
  const StateView view(rs);
  std::vector<BsId> b_u{BsId{0}};
  EXPECT_FALSE(choose_proposal(s, view, UeId{0}, b_u, 100.0).has_value());
  EXPECT_TRUE(b_u.empty());
}

// ---- bs_select --------------------------------------------------------------

Scenario contested_scenario() {
  // One BS (SP0), UEs from both SPs requesting service 0.
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0});
  ms.add_bs(sp1, {1000, 1000});  // far decoy so f_u can differ
  ms.add_ue(sp1, {10, 0}, ServiceId{0});   // UE 0: cross-SP
  ms.add_ue(sp0, {20, 0}, ServiceId{0});   // UE 1: same-SP
  ms.add_ue(sp0, {30, 0}, ServiceId{0});   // UE 2: same-SP
  return ms.build();
}

BsLocalResources full_resources(const Scenario& s, BsId i) {
  return {s.bs(i).cru_capacity, s.bs(i).num_rrbs};
}

TEST(BsSelect, SameSpPoolBeatsCrossSp) {
  const Scenario s = contested_scenario();
  const auto accepted = bs_select(s, BsId{0},
                                  {{UeId{0}, 1}, {UeId{1}, 1}},
                                  full_resources(s, BsId{0}));
  // One winner for the single contested service: the same-SP UE 1.
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{1}}));
}

TEST(BsSelect, SmallerFuWinsWithinPool) {
  const Scenario s = contested_scenario();
  const auto accepted = bs_select(s, BsId{0},
                                  {{UeId{1}, 5}, {UeId{2}, 2}},
                                  full_resources(s, BsId{0}));
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{2}}));
}

TEST(BsSelect, FootprintBreaksFuTies) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {10, 0}, ServiceId{0}, /*cru=*/5);
  ms.add_ue(sp, {10, 5}, ServiceId{0}, /*cru=*/3);
  const Scenario s = ms.build();
  const auto accepted = bs_select(s, BsId{0}, {{UeId{0}, 1}, {UeId{1}, 1}},
                                  full_resources(s, BsId{0}));
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{1}}));  // smaller footprint
}

TEST(BsSelect, OneWinnerPerServiceManyServicesAtOnce) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {10, 0}, ServiceId{0});
  ms.add_ue(sp, {20, 0}, ServiceId{0});
  ms.add_ue(sp, {10, 5}, ServiceId{1});
  const Scenario s = ms.build();
  const auto accepted =
      bs_select(s, BsId{0}, {{UeId{0}, 1}, {UeId{1}, 1}, {UeId{2}, 1}},
                full_resources(s, BsId{0}));
  // Service 0 → one of UE {0,1}; service 1 → UE 2.
  EXPECT_EQ(accepted.size(), 2u);
  EXPECT_TRUE(std::find(accepted.begin(), accepted.end(), UeId{2}) != accepted.end());
}

TEST(BsSelect, RadioTrimDropsLeastPreferred) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0}, 100, /*rrbs=*/1);  // room for exactly one 1-RRB UE
  ms.add_ue(sp0, {10, 0}, ServiceId{0}, 4, 2e6);
  ms.add_ue(sp1, {10, 5}, ServiceId{1}, 4, 2e6);
  const Scenario s = ms.build();
  const auto accepted = bs_select(s, BsId{0}, {{UeId{0}, 1}, {UeId{1}, 1}},
                                  full_resources(s, BsId{0}));
  // Both are sole winners of their services; only 1 RRB available: the
  // same-SP UE 0 survives the trim.
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{0}}));
}

TEST(BsSelect, SkipsProposalsItCanNoLongerHonour) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/3);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, /*cru=*/4);  // bigger than capacity
  const Scenario s = ms.build();
  const auto accepted =
      bs_select(s, BsId{0}, {{UeId{0}, 1}}, full_resources(s, BsId{0}));
  EXPECT_TRUE(accepted.empty());
}

TEST(BsSelect, OrderIndependent) {
  const Scenario s = contested_scenario();
  std::vector<ProposalInfo> props{{UeId{0}, 3}, {UeId{1}, 2}, {UeId{2}, 2}};
  const auto a = bs_select(s, BsId{0}, props, full_resources(s, BsId{0}));
  std::reverse(props.begin(), props.end());
  const auto b = bs_select(s, BsId{0}, props, full_resources(s, BsId{0}));
  EXPECT_EQ(a, b);
}

TEST(BsSelect, AblationDisablesSameSpPreference) {
  const Scenario s = contested_scenario();
  DmraConfig cfg;
  cfg.prefer_same_sp = false;
  // Without the same-SP pool, the smaller-f_u proposer wins even cross-SP.
  const auto accepted = bs_select(s, BsId{0}, {{UeId{0}, 1}, {UeId{1}, 4}},
                                  full_resources(s, BsId{0}), cfg);
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{0}}));
}

TEST(BsSelect, AblationDisablesCoverageCount) {
  const Scenario s = contested_scenario();
  DmraConfig cfg;
  cfg.use_coverage_count = false;
  // UE 1 has the worse f_u but equal footprint and the smaller id among
  // same-SP proposers {1, 2}; without f_u it wins by id.
  const auto accepted = bs_select(s, BsId{0}, {{UeId{1}, 9}, {UeId{2}, 1}},
                                  full_resources(s, BsId{0}), cfg);
  EXPECT_EQ(accepted, (std::vector<UeId>{UeId{1}}));
}

}  // namespace
}  // namespace dmra
