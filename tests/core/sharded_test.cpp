// The region-sharded runtime's contracts: the partition really
// partitions, one shard reproduces the single-bus oracle exactly, more
// shards stay feasible with a bounded profit gap, and the whole run is
// invariant under the worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../test_util.hpp"
#include "core/decentralized.hpp"
#include "mec/allocation.hpp"
#include "sim/feasibility.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

Scenario paper_scenario(std::size_t ues, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.num_ues = ues;
  return generate_scenario(cfg, seed);
}

TEST(RegionPartitionTest, MembershipIsAPartition) {
  const Scenario s = paper_scenario(500, 7);
  const RegionPartition part = partition_regions(s, 4);
  ASSERT_EQ(part.num_regions, 4u);
  ASSERT_EQ(part.bs_region.size(), s.num_bss());
  ASSERT_EQ(part.ue_region.size(), s.num_ues());

  // Every BS appears in exactly one region's member list, and that list
  // agrees with bs_region.
  std::vector<int> bs_seen(s.num_bss(), 0);
  for (std::size_t r = 0; r < part.num_regions; ++r)
    for (const BsId i : part.bss_in(r)) {
      EXPECT_EQ(part.bs_region[i.idx()], r);
      ++bs_seen[i.idx()];
    }
  EXPECT_TRUE(std::all_of(bs_seen.begin(), bs_seen.end(),
                          [](int c) { return c == 1; }));

  // UE classes are exhaustive and mutually exclusive, and each class
  // means what it says about the candidate set.
  std::size_t interior = 0;
  for (std::size_t r = 0; r < part.num_regions; ++r) interior += part.ues_in(r).size();
  EXPECT_EQ(interior + part.boundary_ues.size() + part.cloud_ues.size(), s.num_ues());
  for (std::size_t r = 0; r < part.num_regions; ++r)
    for (const UeId u : part.ues_in(r)) {
      EXPECT_EQ(part.ue_region[u.idx()], r);
      ASSERT_FALSE(s.candidates(u).empty());
      for (const BsId i : s.candidates(u)) EXPECT_EQ(part.bs_region[i.idx()], r);
    }
  for (const UeId u : part.boundary_ues) {
    EXPECT_EQ(part.ue_region[u.idx()], RegionPartition::kBoundary);
    const auto cands = s.candidates(u);
    ASSERT_GE(cands.size(), 2u);
    const std::uint32_t first = part.bs_region[cands[0].idx()];
    EXPECT_TRUE(std::any_of(cands.begin(), cands.end(), [&](BsId i) {
      return part.bs_region[i.idx()] != first;
    }));
  }
  for (const UeId u : part.cloud_ues) {
    EXPECT_EQ(part.ue_region[u.idx()], RegionPartition::kCloudOnly);
    EXPECT_TRUE(s.candidates(u).empty());
  }
}

TEST(RegionPartitionTest, ShardCountIsClamped) {
  const Scenario s = paper_scenario(100, 1);
  EXPECT_EQ(partition_regions(s, 0).num_regions, 1u);
  EXPECT_EQ(partition_regions(s, 10'000).num_regions, s.num_bss());
}

TEST(RegionPartitionTest, SingleRegionHasNoBoundary) {
  const Scenario s = paper_scenario(200, 3);
  const RegionPartition part = partition_regions(s, 1);
  EXPECT_TRUE(part.boundary_ues.empty());
  std::size_t interior = part.ues_in(0).size();
  EXPECT_EQ(interior + part.cloud_ues.size(), s.num_ues());
}

TEST(RegionPartitionTest, DegenerateScenarios) {
  // Zero BSs: everyone is cloud-only, no region is ever empty-sized.
  test::MiniScenario no_bs;
  const SpId sp = no_bs.add_sp();
  no_bs.add_ue(sp, {0.0, 0.0}, ServiceId{0});
  no_bs.add_ue(sp, {10.0, 0.0}, ServiceId{1});
  const Scenario s0 = no_bs.build();
  const RegionPartition p0 = partition_regions(s0, 4);
  EXPECT_EQ(p0.num_regions, 1u);
  EXPECT_EQ(p0.cloud_ues.size(), 2u);
  EXPECT_TRUE(p0.boundary_ues.empty());

  // Co-located BSs: zero-width bounding box collapses into strip 0.
  test::MiniScenario stacked;
  const SpId sp1 = stacked.add_sp();
  stacked.add_bs(sp1, {100.0, 0.0});
  stacked.add_bs(sp1, {100.0, 50.0});
  stacked.add_ue(sp1, {100.0, 25.0}, ServiceId{0});
  const Scenario s1 = stacked.build();
  const RegionPartition p1 = partition_regions(s1, 2);
  EXPECT_EQ(p1.bs_region[0], 0u);
  EXPECT_EQ(p1.bs_region[1], 0u);
  EXPECT_EQ(p1.ues_in(0).size(), 1u);
}

TEST(Sharded, SingleShardMatchesOracleExactly) {
  for (const std::size_t ues : {150u, 500u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const Scenario s = paper_scenario(ues, seed);
      const DecentralizedResult oracle = run_decentralized_dmra(s);
      const ShardedResult sharded = run_sharded_dmra(s, {}, {.num_shards = 1});
      EXPECT_EQ(sharded.dmra.allocation, oracle.dmra.allocation)
          << "ues=" << ues << " seed=" << seed;
      EXPECT_EQ(sharded.dmra.rounds, oracle.dmra.rounds);
      EXPECT_EQ(sharded.dmra.proposals_sent, oracle.dmra.proposals_sent);
      EXPECT_EQ(sharded.shard.boundary_ues, 0u);
      EXPECT_EQ(sharded.shard.reconcile_rounds, 0u);
    }
  }
}

TEST(Sharded, FeasibleWithBoundedProfitGapAcrossShardCounts) {
  // The documented quality contract (docs/PERFORMANCE.md): sharding may
  // only lose profit through boundary UEs being matched after interior
  // ones, so the gap to the oracle stays within a few percent. The 5%
  // bound is deliberately loose — the measured gap at these scales is
  // under 2% — so the test pins the contract, not the noise.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const Scenario s = paper_scenario(500, seed);
    const DecentralizedResult oracle = run_decentralized_dmra(s);
    const double oracle_profit = total_profit(s, oracle.dmra.allocation);
    for (const std::size_t shards : {2u, 4u, 8u}) {
      const ShardedResult res = run_sharded_dmra(s, {}, {.num_shards = shards});
      const FeasibilityReport rep = check_feasibility(s, res.dmra.allocation);
      EXPECT_TRUE(rep.ok) << rep << "\nseed=" << seed << " shards=" << shards;
      const double profit = total_profit(s, res.dmra.allocation);
      EXPECT_GE(profit, 0.95 * oracle_profit)
          << "seed=" << seed << " shards=" << shards << " profit=" << profit
          << " oracle=" << oracle_profit;
    }
  }
}

TEST(Sharded, ByteIdenticalForEveryJobsValue) {
  const Scenario s = paper_scenario(500, 11);
  const ShardedResult base = run_sharded_dmra(s, {}, {.num_shards = 4, .jobs = 1});
  for (const std::size_t jobs : {2u, 8u}) {
    const ShardedResult res = run_sharded_dmra(s, {}, {.num_shards = 4, .jobs = jobs});
    EXPECT_EQ(res.dmra.allocation, base.dmra.allocation) << "jobs=" << jobs;
    EXPECT_EQ(res.dmra.rounds, base.dmra.rounds);
    EXPECT_EQ(res.dmra.proposals_sent, base.dmra.proposals_sent);
    EXPECT_EQ(res.bus.messages_sent, base.bus.messages_sent);
    EXPECT_EQ(res.shard.rounds_per_shard, base.shard.rounds_per_shard);
    EXPECT_EQ(res.shard.boundary_ues_reconciled, base.shard.boundary_ues_reconciled);
  }
}

TEST(Sharded, StatsAccountForEveryUe) {
  const Scenario s = paper_scenario(500, 2);
  const ShardedResult res = run_sharded_dmra(s, {}, {.num_shards = 4});
  EXPECT_EQ(res.shard.num_shards, 4u);
  EXPECT_EQ(res.shard.rounds_per_shard.size(), 4u);
  EXPECT_EQ(res.shard.interior_ues + res.shard.boundary_ues + res.shard.cloud_only_ues,
            s.num_ues());
  EXPECT_LE(res.shard.boundary_ues_reconciled, res.shard.boundary_ues);
  EXPECT_EQ(res.shard.max_shard_rounds,
            *std::max_element(res.shard.rounds_per_shard.begin(),
                              res.shard.rounds_per_shard.end()));
  // Every interior UE either got a BS in its own region or gave up on the
  // cloud; no shard can assign across a cut.
  const RegionPartition part = partition_regions(s, 4);
  for (std::size_t r = 0; r < part.num_regions; ++r)
    for (const UeId u : part.ues_in(r))
      if (const auto bs = res.dmra.allocation.bs_of(u)) {
        EXPECT_EQ(part.bs_region[bs->idx()], r);
      }
}

TEST(Sharded, DeterministicAcrossRepeatedRuns) {
  const Scenario s = paper_scenario(300, 9);
  const ShardedResult a = run_sharded_dmra(s, {}, {.num_shards = 3});
  const ShardedResult b = run_sharded_dmra(s, {}, {.num_shards = 3});
  EXPECT_EQ(a.dmra.allocation, b.dmra.allocation);
  EXPECT_EQ(a.bus.messages_sent, b.bus.messages_sent);
  EXPECT_EQ(a.shard.rounds_per_shard, b.shard.rounds_per_shard);
}

}  // namespace
}  // namespace dmra
