#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "core/solver.hpp"
#include "mec/resources.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

TEST(PartialSolver, PreMatchedUesNeverPropose) {
  ScenarioConfig cfg;
  cfg.num_ues = 100;
  const Scenario s = generate_scenario(cfg, 3);

  // Pre-assign the first 20 UEs wherever DMRA would put them.
  const Allocation full = solve_dmra(s).allocation;
  ResourceState state(s);
  Allocation alloc(s.num_ues());
  std::vector<bool> matched(s.num_ues(), false);
  std::size_t premarked = 0;
  for (std::uint32_t ui = 0; ui < 20; ++ui) {
    const UeId u{ui};
    if (const auto bs = full.bs_of(u)) {
      state.commit(u, *bs);
      alloc.assign(u, *bs);
      matched[ui] = true;
      ++premarked;
    }
  }

  const DmraResult r = solve_dmra_partial(s, {}, state, alloc, matched);
  // The pre-assigned UEs kept their BS.
  for (std::uint32_t ui = 0; ui < 20; ++ui) {
    const UeId u{ui};
    if (full.bs_of(u)) {
      EXPECT_EQ(alloc.bs_of(u), full.bs_of(u));
    }
  }
  // Everyone is matched or legitimately at the cloud, and it's feasible.
  EXPECT_TRUE(check_feasibility(s, alloc).ok);
  EXPECT_GE(r.proposals_sent, alloc.num_served() - premarked);
}

TEST(PartialSolver, AllPreMatchedMeansNothingToDo) {
  ScenarioConfig cfg;
  cfg.num_ues = 50;
  const Scenario s = generate_scenario(cfg, 5);
  ResourceState state(s);
  Allocation alloc(s.num_ues());
  std::vector<bool> matched(s.num_ues(), true);  // pretend everyone is placed
  const DmraResult r = solve_dmra_partial(s, {}, state, alloc, matched);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.proposals_sent, 0u);
}

TEST(PartialSolver, RespectsDepletedState) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, /*cru=*/4);
  ms.add_ue(sp, {10, 0}, ServiceId{0}, 4);
  ms.add_ue(sp, {20, 0}, ServiceId{0}, 4);
  const Scenario s = ms.build();
  ResourceState state(s);
  Allocation alloc(s.num_ues());
  std::vector<bool> matched(s.num_ues(), false);
  // Externally consume the only slot for UE 1's benefit.
  state.commit(UeId{1}, BsId{0});
  alloc.assign(UeId{1}, BsId{0});
  matched[1] = true;
  const DmraResult r = solve_dmra_partial(s, {}, state, alloc, matched);
  (void)r;
  EXPECT_TRUE(alloc.is_cloud(UeId{0}));  // nothing left for UE 0
}

TEST(PartialSolver, MismatchedSizesAreContractViolations) {
  ScenarioConfig cfg;
  cfg.num_ues = 10;
  const Scenario s = generate_scenario(cfg, 1);
  ResourceState state(s);
  Allocation small(5);
  std::vector<bool> matched(10, false);
  EXPECT_THROW(solve_dmra_partial(s, {}, state, small, matched), ContractViolation);
  Allocation ok(10);
  std::vector<bool> bad_mask(7, false);
  EXPECT_THROW(solve_dmra_partial(s, {}, state, ok, bad_mask), ContractViolation);
}

TEST(PartialSolver, EquivalentToFullSolveFromEmptyState) {
  ScenarioConfig cfg;
  cfg.num_ues = 400;
  const Scenario s = generate_scenario(cfg, 7);
  ResourceState state(s);
  Allocation alloc(s.num_ues());
  std::vector<bool> matched(s.num_ues(), false);
  const DmraResult partial = solve_dmra_partial(s, {}, state, alloc, matched);
  const DmraResult full = solve_dmra(s);
  EXPECT_EQ(alloc, full.allocation);
  EXPECT_EQ(partial.rounds, full.rounds);
  EXPECT_EQ(partial.proposals_sent, full.proposals_sent);
}

}  // namespace
}  // namespace dmra
