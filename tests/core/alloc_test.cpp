// The zero-allocation claim of ROADMAP item 2, test-asserted.
//
// This binary (and only this binary, plus bench/perf_report) links
// dmra_alloc_count, whose global operator new overrides count every heap
// allocation on the calling thread. run_decentralized_dmra samples the
// counter once per protocol round; after the settle window (pools grown
// to their high-water marks) the matching loop must not allocate at all.
//
// The dmra-lint hotpath rule proves no *unlicensed* growth calls exist in
// the hot regions; this test proves the licensed ones (reserve-backed
// push_backs, grow-only resizes) actually stop allocating once warm —
// the dynamic half of the static budget in docs/STATIC_ANALYSIS.md.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/decentralized.hpp"
#include "net/fault_plan.hpp"
#include "obs/flight.hpp"
#include "util/alloc_count.hpp"
#include "util/alloc_hook.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

DecentralizedResult run_at(std::size_t num_ues, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.num_ues = num_ues;
  const Scenario s = generate_scenario(cfg, seed);
  return run_decentralized_dmra(s);
}

TEST(AllocBudget, ProbeIsInstalled) {
  allocprobe::install();
  ASSERT_TRUE(alloc_hook::active());
  const std::uint64_t before = alloc_hook::count();
  // A runtime-sized vector defeats allocation elision (a bare `new int`
  // is legally optimized away in release builds).
  std::vector<int> v(static_cast<std::size_t>(before % 7) + 1);
  EXPECT_GT(alloc_hook::count(), before);
  EXPECT_EQ(v.front(), 0);
}

TEST(AllocBudget, DecentralizedSteadyStateAllocationFreeAt2kUes) {
  if (std::getenv("DMRA_AUDIT") != nullptr)
    GTEST_SKIP() << "auditor snapshots allocate by design";
  allocprobe::install();
  const DecentralizedResult r = run_at(2000, 7);
  ASSERT_TRUE(r.alloc.measured);
  // The run must actually exercise steady-state rounds for the zero to
  // mean anything.
  ASSERT_GT(r.dmra.rounds, r.alloc.settle_rounds);
  // Everything is reserved before the round loop, so in practice even the
  // settle-window rounds come out allocation-free; the hard assertion is
  // on the steady state.
  EXPECT_EQ(r.alloc.total_allocations, r.alloc.steady_state_allocations + 0u);
  EXPECT_EQ(r.alloc.steady_state_allocations, 0u)
      << "matching rounds past the settle window must not touch the heap";
}

TEST(AllocBudget, SteadyStateZeroHoldsAcrossSeedsAndSizes) {
  if (std::getenv("DMRA_AUDIT") != nullptr)
    GTEST_SKIP() << "auditor snapshots allocate by design";
  allocprobe::install();
  for (const std::size_t n : {200u, 800u}) {
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const DecentralizedResult r = run_at(n, seed);
      ASSERT_TRUE(r.alloc.measured);
      EXPECT_EQ(r.alloc.steady_state_allocations, 0u)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(AllocBudget, FaultedSteadyStateIsAllocationFreeToo) {
  // Regression for the bus fault path: fate draws, duplicate copies, and
  // the delay parking queue all run inside hot regions, so a reserve()
  // that ignores the armed fault rates (the old `/ 4 + 16` heuristic for
  // delayed_) shows up here as steady-state allocations under heavy
  // duplicate/delay traffic. The worst-case plan: loss, duplication, and
  // long delays armed at once.
  if (std::getenv("DMRA_AUDIT") != nullptr)
    GTEST_SKIP() << "auditor snapshots allocate by design";
  allocprobe::install();
  FaultPlan plan;
  plan.link.drop_probability = 0.05;
  plan.link.duplicate_probability = 0.5;
  plan.link.delay_probability = 0.5;
  plan.link.max_delay_rounds = 4;
  ScenarioConfig cfg;
  cfg.num_ues = 2000;
  const Scenario s = generate_scenario(cfg, 7);
  NetworkConditions net;
  net.seed = 21;
  net.faults = &plan;
  const DecentralizedResult r = run_decentralized_dmra(s, {}, net);
  ASSERT_TRUE(r.alloc.measured);
  ASSERT_GT(r.dmra.rounds, r.alloc.settle_rounds);
  ASSERT_GT(r.bus.messages_duplicated + r.bus.messages_delayed, 0u)
      << "the plan must actually exercise the parking queues";
  EXPECT_EQ(r.alloc.steady_state_allocations, 0u)
      << "faulted rounds past the settle window must not touch the heap";
}

TEST(AllocBudget, AlwaysOnFlightRecorderKeepsSteadyStateAllocationFree) {
  // The flight recorder is installed for every bench session
  // (docs/OBSERVABILITY.md): its record()/finish_round() ring writes and
  // even a mid-run trigger freeze (pre-allocated snapshot buffers) must
  // not move the steady-state allocation count off zero.
  if (std::getenv("DMRA_AUDIT") != nullptr)
    GTEST_SKIP() << "auditor snapshots allocate by design";
  allocprobe::install();
  obs::FlightRecorder flight;
  flight.arm_dump_on_round(5);  // exercise the trigger path inside the run
  obs::ScopedFlightRecorder scope(&flight);
  const DecentralizedResult r = run_at(2000, 7);
  ASSERT_TRUE(r.alloc.measured);
  ASSERT_GT(r.dmra.rounds, r.alloc.settle_rounds);
  ASSERT_GT(static_cast<std::size_t>(r.dmra.rounds), 5u)
      << "the dump-on trigger must actually fire mid-run";
  EXPECT_TRUE(flight.triggered());
  EXPECT_GT(flight.events_seen(), 0u);
  EXPECT_EQ(flight.rounds_seen(), static_cast<std::uint64_t>(r.dmra.rounds));
  EXPECT_EQ(r.alloc.steady_state_allocations, 0u)
      << "the always-on flight recorder broke the zero-allocation budget";
}

TEST(AllocBudget, FaultedRunWithFlightRecorderIsAllocationFreeToo) {
  // The faulted variant of the budget with the recorder live: the crash/
  // degrade fault events route through FlightRecorder::record inside hot
  // regions, so a ring write that allocates shows up here.
  if (std::getenv("DMRA_AUDIT") != nullptr)
    GTEST_SKIP() << "auditor snapshots allocate by design";
  allocprobe::install();
  obs::FlightRecorder flight;
  obs::ScopedFlightRecorder scope(&flight);
  FaultPlan plan;
  plan.link.drop_probability = 0.05;
  plan.link.duplicate_probability = 0.5;
  plan.link.delay_probability = 0.5;
  plan.link.max_delay_rounds = 4;
  ScenarioConfig cfg;
  cfg.num_ues = 2000;
  const Scenario s = generate_scenario(cfg, 7);
  NetworkConditions net;
  net.seed = 21;
  net.faults = &plan;
  const DecentralizedResult r = run_decentralized_dmra(s, {}, net);
  ASSERT_TRUE(r.alloc.measured);
  ASSERT_GT(r.dmra.rounds, r.alloc.settle_rounds);
  EXPECT_GT(flight.rounds_seen(), 0u);
  EXPECT_EQ(r.alloc.steady_state_allocations, 0u)
      << "faulted rounds with the flight recorder live must not touch the heap";
}

TEST(AllocBudget, CountersZeroWhenNotMeasuring) {
  // A fresh result from a run before install() in some other process
  // can't be simulated here (the probe is process-wide and sticky), but
  // the default-constructed counters document the unmeasured shape.
  const AllocCounters c;
  EXPECT_FALSE(c.measured);
  EXPECT_EQ(c.steady_state_allocations, 0u);
  EXPECT_EQ(c.total_allocations, 0u);
}

}  // namespace
}  // namespace dmra
