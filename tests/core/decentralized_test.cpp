#include "core/decentralized.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "core/solver.hpp"
#include "sim/feasibility.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

TEST(Decentralized, TinyScenarioMatchesDirectSolver) {
  const Scenario s = test::two_bs_scenario(4);
  const DmraResult direct = solve_dmra(s);
  const DecentralizedResult dec = run_decentralized_dmra(s);
  EXPECT_EQ(dec.dmra.allocation, direct.allocation);
  EXPECT_EQ(dec.dmra.rounds, direct.rounds);
  EXPECT_EQ(dec.dmra.proposals_sent, direct.proposals_sent);
  EXPECT_EQ(dec.dmra.rejections, direct.rejections);
}

// The central claim: the message-passing protocol computes exactly the
// allocation of the in-memory solver, across sizes, seeds, and configs.
class EquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(EquivalenceProperty, ProtocolEqualsDirectSolver) {
  const auto [ues, seed, rho] = GetParam();
  ScenarioConfig cfg;
  cfg.num_ues = static_cast<std::size_t>(ues);
  const Scenario s = generate_scenario(cfg, static_cast<std::uint64_t>(seed));
  const DmraConfig dc{.rho = rho};
  const DmraResult direct = solve_dmra(s, dc);
  const DecentralizedResult dec = run_decentralized_dmra(s, dc);
  EXPECT_EQ(dec.dmra.allocation, direct.allocation);
  EXPECT_EQ(dec.dmra.rounds, direct.rounds);
  EXPECT_EQ(dec.dmra.proposals_sent, direct.proposals_sent);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceProperty,
                         ::testing::Combine(::testing::Values(30, 150, 500),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(0.0, 100.0, 1000.0)));

TEST(Decentralized, EquivalentUnderEveryScenarioFlavour) {
  // The equivalence must hold for every scenario feature, not only the
  // paper defaults: random placement, shadowed channels, hotspot
  // populations, Zipf services, per-BS price multipliers.
  struct Flavour {
    const char* label;
    ScenarioConfig cfg;
  };
  std::vector<Flavour> flavours;
  {
    ScenarioConfig cfg;
    cfg.num_ues = 250;
    cfg.placement = PlacementMethod::kRandom;
    flavours.push_back({"random placement", cfg});
  }
  {
    ScenarioConfig cfg;
    cfg.num_ues = 250;
    cfg.channel.shadowing_sigma_db = 6.0;
    cfg.channel.shadowing_seed = 4;
    flavours.push_back({"shadowing", cfg});
  }
  {
    ScenarioConfig cfg;
    cfg.num_ues = 250;
    cfg.ue_distribution = UeDistribution::kHotspots;
    cfg.service_popularity = ServicePopularity::kZipf;
    flavours.push_back({"hotspots+zipf", cfg});
  }
  {
    ScenarioConfig cfg;
    cfg.num_ues = 250;
    cfg.channel.pathloss_model = PathlossModel::kLteMacro;
    flavours.push_back({"lte-macro pathloss", cfg});
  }
  for (const Flavour& f : flavours) {
    const Scenario s = generate_scenario(f.cfg, 21);
    EXPECT_EQ(run_decentralized_dmra(s).dmra.allocation, solve_dmra(s).allocation)
        << f.label;
  }
}

TEST(Decentralized, EquivalentUnderPriceMultipliers) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario base = generate_scenario(cfg, 23);
  ScenarioData data;
  data.num_services = base.num_services();
  data.sps.assign(base.sps().begin(), base.sps().end());
  data.bss.assign(base.bss().begin(), base.bss().end());
  for (std::size_t i = 0; i < data.bss.size(); ++i)
    data.bss[i].price_multiplier = 0.8 + 0.05 * static_cast<double>(i % 10);
  data.ues.assign(base.ues().begin(), base.ues().end());
  data.channel = base.channel();
  data.ofdma = base.ofdma();
  data.pricing = base.pricing();
  data.coverage_radius_m = base.coverage_radius_m();
  const Scenario s(std::move(data));
  EXPECT_EQ(run_decentralized_dmra(s).dmra.allocation, solve_dmra(s).allocation);
}

TEST(Decentralized, EquivalentUnderAblationConfigs) {
  ScenarioConfig cfg;
  cfg.num_ues = 200;
  const Scenario s = generate_scenario(cfg, 7);
  for (const DmraConfig dc : {DmraConfig{.prefer_same_sp = false},
                              DmraConfig{.use_coverage_count = false},
                              DmraConfig{.drop_rejected = true}}) {
    EXPECT_EQ(run_decentralized_dmra(s, dc).dmra.allocation,
              solve_dmra(s, dc).allocation);
  }
}

TEST(Decentralized, BusTrafficIsAccounted) {
  ScenarioConfig cfg;
  cfg.num_ues = 100;
  const Scenario s = generate_scenario(cfg, 11);
  const DecentralizedResult r = run_decentralized_dmra(s);
  EXPECT_GT(r.bus.messages_sent, 0u);
  EXPECT_EQ(r.bus.messages_sent, r.bus.messages_delivered);
  // Each DMRA iteration is 4 bus rounds plus the bootstrap broadcast and
  // the final empty round that detects quiescence.
  EXPECT_GE(r.bus.rounds, 4 * r.dmra.rounds + 1);
  // Every proposal travels UE→SP→BS and is answered BS→SP→UE: at least
  // four messages per proposal, plus broadcasts.
  EXPECT_GT(r.bus.messages_sent, 4 * r.dmra.proposals_sent);
}

TEST(Decentralized, FeasibleOnItsOwn) {
  ScenarioConfig cfg;
  cfg.num_ues = 300;
  const Scenario s = generate_scenario(cfg, 13);
  const DecentralizedResult r = run_decentralized_dmra(s);
  EXPECT_TRUE(check_feasibility(s, r.dmra.allocation).ok);
}

TEST(Decentralized, HandlesUncoverableUes) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {5000, 5000}, ServiceId{0});
  const Scenario s = ms.build();
  const DecentralizedResult r = run_decentralized_dmra(s);
  EXPECT_TRUE(r.dmra.allocation.is_cloud(UeId{0}));
  EXPECT_EQ(r.dmra.rounds, 0u);
}

TEST(Decentralized, AllocatorAdapterMatchesRuntime) {
  ScenarioConfig cfg;
  cfg.num_ues = 120;
  const Scenario s = generate_scenario(cfg, 19);
  const DecentralizedDmraAllocator adapter;
  EXPECT_EQ(adapter.allocate(s), run_decentralized_dmra(s).dmra.allocation);
  EXPECT_EQ(adapter.name(), "DMRA-decentralized");
}

}  // namespace
}  // namespace dmra
