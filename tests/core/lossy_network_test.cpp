// Safety and liveness of the decentralized protocol on a lossy network.
#include <gtest/gtest.h>

#include "core/decentralized.hpp"
#include "core/solver.hpp"
#include "net/bus.hpp"
#include "sim/feasibility.hpp"
#include "sim/metrics.hpp"
#include "util/require.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

Scenario test_scenario(std::size_t ues = 300, std::uint64_t seed = 9) {
  ScenarioConfig cfg;
  cfg.num_ues = ues;
  return generate_scenario(cfg, seed);
}

TEST(LossyNetwork, ZeroLossIsStillBitIdenticalToDirect) {
  const Scenario s = test_scenario();
  const NetworkConditions reliable{};  // drop 0
  EXPECT_EQ(run_decentralized_dmra(s, {}, reliable).dmra.allocation,
            solve_dmra(s).allocation);
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, AlwaysFeasibleAndTerminates) {
  const Scenario s = test_scenario();
  const NetworkConditions net{.drop_probability = GetParam(), .seed = 5};
  const DecentralizedResult r = run_decentralized_dmra(s, {}, net);
  const FeasibilityReport report = check_feasibility(s, r.dmra.allocation);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
  EXPECT_GT(r.bus.messages_dropped, 0u);
  EXPECT_LE(r.dmra.rounds, 2 * s.num_ues() + 16);
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossSweep, ::testing::Values(0.05, 0.15, 0.3, 0.5));

TEST(LossyNetwork, QualityDegradesGracefully) {
  const Scenario s = test_scenario(500);
  const double clean = total_profit(s, run_decentralized_dmra(s).dmra.allocation);
  const NetworkConditions net{.drop_probability = 0.2, .seed = 7};
  const double lossy = total_profit(s, run_decentralized_dmra(s, {}, net).dmra.allocation);
  // Losses cost retries and sometimes strand a UE, but the protocol keeps
  // the vast majority of the value.
  EXPECT_GT(lossy, 0.8 * clean);
}

TEST(LossyNetwork, DeterministicPerSeedAndSeedSensitive) {
  const Scenario s = test_scenario(200);
  const NetworkConditions a{.drop_probability = 0.2, .seed = 11};
  const NetworkConditions b{.drop_probability = 0.2, .seed = 12};
  EXPECT_EQ(run_decentralized_dmra(s, {}, a).dmra.allocation,
            run_decentralized_dmra(s, {}, a).dmra.allocation);
  EXPECT_NE(run_decentralized_dmra(s, {}, a).bus.messages_dropped,
            run_decentralized_dmra(s, {}, b).bus.messages_dropped);
}

TEST(LossyNetwork, NoDoubleCommitEvenUnderHeavyLoss) {
  // The feasibility check already proves no BS is oversubscribed relative
  // to the final allocation; here we additionally pin the invariant that
  // every UE appears at most once (Allocation guarantees it) and that the
  // heavy-loss run still serves a sane fraction.
  const Scenario s = test_scenario(400);
  const NetworkConditions net{.drop_probability = 0.4, .seed = 3};
  const DecentralizedResult r = run_decentralized_dmra(s, {}, net);
  EXPECT_TRUE(check_feasibility(s, r.dmra.allocation).ok);
  EXPECT_GT(r.dmra.allocation.num_served(), s.num_ues() / 2);
}

TEST(LossyNetwork, LossCostsMoreMessages) {
  const Scenario s = test_scenario(250);
  const DecentralizedResult clean = run_decentralized_dmra(s);
  const DecentralizedResult lossy =
      run_decentralized_dmra(s, {},
                             NetworkConditions{.drop_probability = 0.25, .seed = 5});
  // Retries plus per-round rebroadcasts dominate the dropped savings.
  EXPECT_GT(lossy.bus.messages_sent, clean.bus.messages_sent);
  EXPECT_GT(lossy.dmra.rounds, 0u);
}

TEST(LossyNetwork, BusRejectsInvalidDropRates) {
  MessageBus<int> bus;
  EXPECT_THROW(bus.set_loss(-0.1, 1), ContractViolation);
  EXPECT_THROW(bus.set_loss(1.0, 1), ContractViolation);
}

TEST(LossyNetwork, BusDropStatsAddUp) {
  MessageBus<int> bus;
  const AgentId a = bus.register_agent();
  bus.set_loss(0.5, 42);
  for (int i = 0; i < 2000; ++i) bus.send(a, a, i);
  bus.deliver();
  const BusStats& st = bus.stats();
  EXPECT_EQ(st.messages_dropped + st.messages_delivered, st.messages_sent);
  EXPECT_NEAR(static_cast<double>(st.messages_dropped) / st.messages_sent, 0.5, 0.05);
}

}  // namespace
}  // namespace dmra
