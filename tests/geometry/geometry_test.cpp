#include "geometry/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {
namespace {

TEST(Distance, KnownValues) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Distance, Symmetric) {
  const Point a{12.5, -3.0};
  const Point b{-7.0, 44.0};
  EXPECT_DOUBLE_EQ(distance_m(a, b), distance_m(b, a));
}

TEST(Rect, ContainsBoundaryAndInterior) {
  const Rect r{0, 0, 10, 20};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 20}));
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({-0.1, 5}));
  EXPECT_FALSE(r.contains({5, 20.1}));
}

TEST(Rect, DimensionsAndCenter) {
  const Rect r{2, 4, 12, 24};
  EXPECT_DOUBLE_EQ(r.width(), 10.0);
  EXPECT_DOUBLE_EQ(r.height(), 20.0);
  EXPECT_DOUBLE_EQ(r.center().x, 7.0);
  EXPECT_DOUBLE_EQ(r.center().y, 14.0);
}

TEST(SampleUniform, AllInsideAndDeterministic) {
  const Rect r{0, 0, 1200, 1200};
  Rng rng1(3), rng2(3);
  const auto a = sample_uniform(r, 500, rng1);
  const auto b = sample_uniform(r, 500, rng2);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(r.contains(a[i]));
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(SampleUniform, SpreadsAcrossArea) {
  const Rect r{0, 0, 100, 100};
  Rng rng(5);
  const auto pts = sample_uniform(r, 400, rng);
  int quadrants[4] = {0, 0, 0, 0};
  for (const Point& p : pts) quadrants[(p.x > 50 ? 1 : 0) + (p.y > 50 ? 2 : 0)]++;
  for (int q : quadrants) EXPECT_GT(q, 50);
}

TEST(GridPoints, CountAndSpacing) {
  const Rect r{0, 0, 1200, 1200};
  const auto pts = grid_points(r, 5, 5, 300.0);
  ASSERT_EQ(pts.size(), 25u);
  // Row-major: neighbours in the same row are 300 m apart.
  EXPECT_DOUBLE_EQ(distance_m(pts[0], pts[1]), 300.0);
  // Vertical neighbours too.
  EXPECT_DOUBLE_EQ(distance_m(pts[0], pts[5]), 300.0);
}

TEST(GridPoints, CenteredInArea) {
  const Rect r{0, 0, 1200, 1200};
  const auto pts = grid_points(r, 5, 5, 300.0);
  // 5×5 at 300 m spans 1200 m; centered → first point at (0, 0) offset by
  // (1200-1200)/2 = 0.
  EXPECT_DOUBLE_EQ(pts.front().x, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 1200.0);
  // A 3×3 grid at 300 m spans 600; centered → margin 300 on each side.
  const auto small = grid_points(r, 3, 3, 300.0);
  EXPECT_DOUBLE_EQ(small.front().x, 300.0);
  EXPECT_DOUBLE_EQ(small.back().x, 900.0);
}

TEST(GridPoints, SingleRowAndColumn) {
  const Rect r{0, 0, 100, 100};
  const auto row = grid_points(r, 1, 4, 10.0);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0].y, row[3].y);
  const auto col = grid_points(r, 4, 1, 10.0);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_DOUBLE_EQ(col[0].x, col[3].x);
}

TEST(GridPoints, Contracts) {
  const Rect r{0, 0, 10, 10};
  EXPECT_THROW(grid_points(r, 0, 3, 1.0), ContractViolation);
  EXPECT_THROW(grid_points(r, 3, 0, 1.0), ContractViolation);
  EXPECT_THROW(grid_points(r, 3, 3, 0.0), ContractViolation);
}

}  // namespace
}  // namespace dmra
