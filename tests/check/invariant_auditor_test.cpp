// Negative-injection and property tests for the invariant auditor: a
// deliberately corrupted ledger, a double commit, or an over-budget RRB
// trim must be flagged; real allocators must run clean under full audit.
#include "check/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "../test_util.hpp"
#include "baselines/dcsp.hpp"
#include "baselines/exact.hpp"
#include "baselines/greedy.hpp"
#include "baselines/nonco.hpp"
#include "baselines/random_alloc.hpp"
#include "core/dmra_allocator.hpp"
#include "core/incremental.hpp"
#include "mec/resources.hpp"
#include "sim/online.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

using check::AuditedAllocator;
using check::AuditFailure;
using check::AuditorOptions;
using check::InvariantAuditor;

/// RoundContext whose ledger truthfully mirrors `state`.
audit::RoundContext make_context(const Scenario& s, const Allocation& alloc,
                                 const ResourceState& state, std::size_t round = 0,
                                 std::string_view source = "test") {
  audit::RoundContext ctx;
  ctx.scenario = &s;
  ctx.allocation = &alloc;
  ctx.ledger = audit::snapshot_ledger(
      s, [&](BsId i, ServiceId j) { return state.remaining_crus(i, j); },
      [&](BsId i) { return state.remaining_rrbs(i); });
  ctx.round = round;
  ctx.source = source;
  return ctx;
}

TEST(InvariantAuditor, ConsistentRoundPasses) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation alloc(4);
  state.commit(UeId{0}, BsId{0});
  alloc.assign(UeId{0}, BsId{0});

  InvariantAuditor auditor;
  auditor.on_round(make_context(s, alloc, state));
  EXPECT_TRUE(auditor.findings().ok);
  EXPECT_EQ(auditor.rounds_audited(), 1u);
}

TEST(InvariantAuditor, CorruptedLedgerLeakIsFlagged) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation alloc(4);
  state.commit(UeId{0}, BsId{0});
  alloc.assign(UeId{0}, BsId{0});

  // Inject drift: the ledger claims one CRU more than the recount allows
  // (an unpaired release).
  auto ctx = make_context(s, alloc, state);
  ctx.ledger.crus[s.ue(UeId{0}).service.idx()] += 1;

  InvariantAuditor throwing;
  EXPECT_THROW(throwing.on_round(ctx), AuditFailure);

  InvariantAuditor collecting(AuditorOptions{.throw_on_violation = false});
  collecting.on_round(ctx);
  ASSERT_FALSE(collecting.findings().ok);
  EXPECT_NE(collecting.findings().violations.front().find("leak"), std::string::npos);
}

TEST(InvariantAuditor, DoubleCommitIsFlagged) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation alloc(4);
  // The ledger pays twice for one assignment — exactly what a re-proposal
  // committed twice (lost-ack bug) would look like.
  state.commit(UeId{0}, BsId{0});
  state.commit(UeId{0}, BsId{0});
  alloc.assign(UeId{0}, BsId{0});

  InvariantAuditor auditor(AuditorOptions{.throw_on_violation = false});
  auditor.on_round(make_context(s, alloc, state));
  ASSERT_FALSE(auditor.findings().ok);
  bool mentions_double = false;
  for (const auto& v : auditor.findings().violations)
    if (v.find("double") != std::string::npos) mentions_double = true;
  EXPECT_TRUE(mentions_double);
}

TEST(InvariantAuditor, OverBudgetRrbTrimFailsRoundAudit) {
  // One BS with a single RRB; a broken trim admits both UEs anyway.
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/1);
  ms.add_ue(sp, {400, 0}, ServiceId{0}, 4, 2e6);
  ms.add_ue(sp, {410, 0}, ServiceId{0}, 4, 2e6);
  const Scenario s = ms.build();

  Allocation alloc(2);
  alloc.assign(UeId{0}, BsId{0});
  alloc.assign(UeId{1}, BsId{0});

  audit::RoundContext ctx;
  ctx.scenario = &s;
  ctx.allocation = &alloc;
  ctx.round = 0;
  ctx.source = "test";  // no ledger: partial feasibility still checked

  InvariantAuditor auditor(AuditorOptions{.throw_on_violation = false});
  auditor.on_round(ctx);
  ASSERT_FALSE(auditor.findings().ok);
  bool mentions_eq14 = false;
  for (const auto& v : auditor.findings().violations)
    if (v.find("Eq. 14") != std::string::npos) mentions_eq14 = true;
  EXPECT_TRUE(mentions_eq14);

  InvariantAuditor final_auditor;
  EXPECT_THROW(final_auditor.audit_final(s, alloc), AuditFailure);
}

TEST(InvariantAuditor, MonotonicProfitViolationIsFlagged) {
  const Scenario s = test::two_bs_scenario(4);

  ResourceState round0_state(s);
  Allocation round0(4);
  round0_state.commit(UeId{0}, BsId{0});
  round0.assign(UeId{0}, BsId{0});

  ResourceState round1_state(s);  // full capacity again
  const Allocation round1(4);     // ... and the assignment vanished

  InvariantAuditor auditor(AuditorOptions{.throw_on_violation = false});
  auditor.on_round(make_context(s, round0, round0_state, /*round=*/0, "run"));
  EXPECT_TRUE(auditor.findings().ok);
  auditor.on_round(make_context(s, round1, round1_state, /*round=*/1, "run"));
  ASSERT_FALSE(auditor.findings().ok);
  EXPECT_NE(auditor.findings().violations.front().find("monotonic-profit"),
            std::string::npos);
}

TEST(InvariantAuditor, ProfitBaselineResetsBetweenRuns) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation assigned(4);
  state.commit(UeId{0}, BsId{0});
  assigned.assign(UeId{0}, BsId{0});
  const ResourceState fresh(s);
  const Allocation empty(4);

  InvariantAuditor auditor;
  auditor.on_round(make_context(s, assigned, state, /*round=*/0, "run"));
  // A new run (round restarts at 0) may legitimately start from zero profit.
  EXPECT_NO_THROW(auditor.on_round(make_context(s, empty, fresh, /*round=*/0, "run")));
}

TEST(InvariantAuditor, ResetClearsFindings) {
  const Scenario s = test::two_bs_scenario(4);
  ResourceState state(s);
  Allocation alloc(4);
  state.commit(UeId{0}, BsId{0});  // committed but never assigned: drift
  InvariantAuditor auditor(AuditorOptions{.throw_on_violation = false});
  auditor.on_round(make_context(s, alloc, state));
  ASSERT_FALSE(auditor.findings().ok);
  auditor.reset();
  EXPECT_TRUE(auditor.findings().ok);
  EXPECT_EQ(auditor.rounds_audited(), 0u);
}

// A deliberately broken allocator: ignores capacities and dumps every UE
// onto the first BS. The audited wrapper must refuse its output.
class OverCommittingAllocator final : public Allocator {
 public:
  std::string name() const override { return "OverCommit"; }
  Allocation allocate(const Scenario& scenario) const override {
    Allocation alloc(scenario.num_ues());
    for (std::size_t ui = 0; ui < scenario.num_ues(); ++ui)
      alloc.assign(UeId{static_cast<std::uint32_t>(ui)}, BsId{0});
    return alloc;
  }
};

TEST(AuditedAllocator, CatchesCorruptAllocator) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0}, 100, /*rrbs=*/1);
  for (int n = 0; n < 3; ++n)
    ms.add_ue(sp, {400.0 + n, 0}, ServiceId{0}, 4, 2e6);
  const Scenario s = ms.build();

  const AuditedAllocator audited(std::make_unique<OverCommittingAllocator>());
  EXPECT_EQ(audited.name(), "OverCommit");
  EXPECT_THROW(audited.allocate(s), AuditFailure);
}

TEST(AuditedAllocator, PassesThroughCleanAllocators) {
  const Scenario s = test::two_bs_scenario(6);
  const AuditedAllocator audited(std::make_unique<DmraAllocator>());
  const Allocation direct = DmraAllocator().allocate(s);
  EXPECT_EQ(audited.allocate(s), direct);
}

TEST(Auditor, InstrumentedRunsReportRounds) {
  const Scenario s = test::two_bs_scenario(6);
  InvariantAuditor auditor;
  {
    audit::ScopedAuditObserver guard(&auditor);
    (void)solve_dmra(s);
  }
  EXPECT_TRUE(auditor.findings().ok);
#if defined(DMRA_AUDIT_ENABLED) && DMRA_AUDIT_ENABLED
  EXPECT_GT(auditor.rounds_audited(), 0u);
#else
  EXPECT_EQ(auditor.rounds_audited(), 0u);
#endif
}

TEST(Auditor, DecentralizedRunsCleanUnderAudit) {
  ScenarioConfig cfg;
  cfg.num_ues = 30;
  const Scenario s = generate_scenario(cfg, 7);
  InvariantAuditor auditor;
  audit::ScopedAuditObserver guard(&auditor);
  const auto reliable = run_decentralized_dmra(s);
  EXPECT_TRUE(check_feasibility(s, reliable.dmra.allocation).ok);
  NetworkConditions lossy;
  lossy.drop_probability = 0.2;
  lossy.seed = 3;
  const auto impaired = run_decentralized_dmra(s, {}, lossy);
  EXPECT_TRUE(check_feasibility(s, impaired.dmra.allocation).ok);
  EXPECT_TRUE(auditor.findings().ok);
}

TEST(Auditor, IncrementalRunsCleanUnderAudit) {
  ScenarioConfig cfg;
  cfg.num_ues = 30;
  const Scenario s = generate_scenario(cfg, 11);
  const Allocation first = DmraAllocator().allocate(s);
  InvariantAuditor auditor;
  audit::ScopedAuditObserver guard(&auditor);
  const IncrementalResult r = solve_incremental_dmra(s, first);
  EXPECT_TRUE(check_feasibility(s, r.allocation).ok);
  EXPECT_TRUE(auditor.findings().ok);
}

TEST(Auditor, OnlineSimulatorRunsCleanUnderAudit) {
  OnlineConfig cfg;
  cfg.scenario.num_ues = 20;
  cfg.epochs = 6;
  const DmraAllocator allocator;
  InvariantAuditor auditor;
  audit::ScopedAuditObserver guard(&auditor);
  OnlineSimulator sim(cfg, allocator);
  const OnlineResult result = sim.run();
  EXPECT_EQ(result.epochs.size(), 6u);
  EXPECT_TRUE(auditor.findings().ok);
}

TEST(Auditor, EnvFactoryYieldsProcessAuditor) {
  audit::Observer* a = check::detail::env_auditor_factory();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, check::detail::env_auditor_factory());  // stable singleton
}

TEST(Auditor, EnvVarInstallsThrowingProcessAuditor) {
  // End-to-end proof that DMRA_AUDIT=1 wires up a live, throwing auditor:
  // the death-test child re-execs this binary with the variable set (fresh
  // env-check state), feeds the installed observer a drifted ledger, and
  // must die on the resulting AuditFailure.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ::setenv("DMRA_AUDIT", "1", 1);
  EXPECT_EXIT(
      {
        if (!audit::enabled()) _exit(0);  // would make the test fail to die
        const Scenario s = test::two_bs_scenario(4);
        ResourceState state(s);
        Allocation alloc(4);
        state.commit(UeId{0}, BsId{0});
        alloc.assign(UeId{0}, BsId{0});
        auto ctx = make_context(s, alloc, state);
        ctx.ledger.crus[s.ue(UeId{0}).service.idx()] += 1;
        try {
          audit::observer()->on_round(ctx);
        } catch (const AuditFailure& e) {
          std::fprintf(stderr, "%s\n", e.what());
          _exit(7);
        }
        _exit(0);
      },
      ::testing::ExitedWithCode(7), "leak");
  ::unsetenv("DMRA_AUDIT");
}

// Property: DMRA and every baseline stay invariant-clean over 50 random
// scenarios with the auditor fully enabled (per-round + final).
class AuditedAllocatorsProperty : public ::testing::TestWithParam<int> {};

TEST_P(AuditedAllocatorsProperty, FiftyRandomScenarios) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  ScenarioConfig cfg;
  cfg.num_ues = 20 + (seed % 3) * 15;  // 20, 35, or 50 arrivals
  const Scenario s = generate_scenario(cfg, seed);

  std::vector<AllocatorPtr> algos;
  algos.push_back(check::wrap_audited(std::make_unique<DmraAllocator>()));
  algos.push_back(check::wrap_audited(std::make_unique<DecentralizedDmraAllocator>()));
  algos.push_back(check::wrap_audited(std::make_unique<DcspAllocator>()));
  algos.push_back(check::wrap_audited(std::make_unique<NonCoAllocator>()));
  algos.push_back(check::wrap_audited(std::make_unique<GreedyProfitAllocator>()));
  algos.push_back(check::wrap_audited(std::make_unique<RandomAllocator>(seed)));
  for (const auto& algo : algos) {
    const Allocation alloc = algo->allocate(s);  // AuditFailure would fail the test
    EXPECT_TRUE(check_feasibility(s, alloc).ok) << algo->name();
  }

  // The exact solver only fits small instances; audit it on a downsized
  // copy of the same seed.
  ScenarioConfig tiny = cfg;
  tiny.num_ues = 8;
  const Scenario st = generate_scenario(tiny, seed);
  const Allocation exact = check::wrap_audited(std::make_unique<ExactAllocator>())
                               ->allocate(st);
  EXPECT_TRUE(check_feasibility(st, exact).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditedAllocatorsProperty, ::testing::Range(1, 51));

}  // namespace
}  // namespace dmra
