// expect: layering-violation
// core reaching *up* into sim: the fixture layers.json only allows
// core -> util.
#include "sim/feasibility.hpp"
#include "util/rng.hpp"

namespace fixture {

int check() { return 1; }

}  // namespace fixture
