// expect: det-pointer-key
// A container keyed by pointer orders (or hashes) by allocation address,
// which varies run to run.
#include <map>

namespace fixture {

struct Agent {
  int id = 0;
};

int sum_ranks(const std::map<Agent*, int>& ranks) {
  int total = 0;
  for (const auto& kv : ranks) total = total * 31 + kv.second;
  return total;
}

}  // namespace fixture
