// expect: det-unordered-container det-unordered-iter
// Iterating an unordered container straight into an exported result: the
// canonical determinism hazard the lint exists to catch.
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<int> export_totals(const std::vector<int>& xs) {
  std::unordered_map<int, int> totals;
  for (int x : xs) totals[x % 7] += x;
  std::vector<int> out;
  for (const auto& kv : totals) out.push_back(kv.second);  // hash order leaks
  return out;
}

}  // namespace fixture
