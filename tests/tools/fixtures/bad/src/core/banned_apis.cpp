// expect: banned-rand banned-random-device banned-raw-engine banned-float
// One of each entry in the banned-API table.
#include <cstdlib>
#include <random>

namespace fixture {

float jitter() {
  std::random_device rd;
  std::mt19937 gen(rd());
  const int r = rand() % 100;
  float noise = static_cast<float>(r + static_cast<int>(gen() % 10u));
  return noise;
}

}  // namespace fixture
