// expect: hotpath-region-syntax
// A region that is opened and never closed: the annotation itself is
// broken, which is a hard (unwaivable) error.
#include <cstddef>

namespace fixture {

std::size_t spin(std::size_t n) {
  std::size_t acc = 0;
  // dmra::hotpath begin(never-closed)
  for (std::size_t i = 0; i < n; ++i) acc += i;
  return acc;
}

}  // namespace fixture
