// expect: det-wallclock
// Wall-clock reads in result-affecting code (anywhere outside src/obs).
#include <chrono>
#include <cstdint>

namespace fixture {

std::uint64_t tiebreak_seed() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(now.time_since_epoch().count());
}

}  // namespace fixture
