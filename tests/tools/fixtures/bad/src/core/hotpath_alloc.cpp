// expect: hotpath-new hotpath-make hotpath-std-function hotpath-container-decl hotpath-growth
// One of every allocation construct the hotpath pass must flag inside an
// annotated region.
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Msg {
  int payload = 0;
};

int drain(std::size_t n) {
  int total = 0;
  // dmra::hotpath begin(drain-loop)
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Msg> batch;                       // container constructed per iteration
    batch.push_back(Msg{static_cast<int>(i)});    // growth with no visible reserve
    auto owned = std::make_unique<Msg>(Msg{1});   // heap allocation per message
    Msg* raw = new Msg{2};                        // raw operator new
    std::function<int(int)> op = [](int x) { return x + 1; };  // may heap-allocate
    total += op(batch.back().payload + owned->payload + raw->payload);
    delete raw;
  }
  // dmra::hotpath end(drain-loop)
  return total;
}

}  // namespace fixture
