// expect: det-unseeded-rng
// A default-constructed engine draws from an unseeded, fixed stream that
// silently couples every call site; the repo requires named dmra::Rng
// child streams.
#include <random>

namespace fixture {

int roll() {
  std::mt19937 gen;
  return static_cast<int>(gen() % 6u) + 1;
}

}  // namespace fixture
