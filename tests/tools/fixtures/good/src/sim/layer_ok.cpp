// sim may include core and util under the fixture layers.json — both
// edges point downward.
#include "core/solver.hpp"
#include "util/rng.hpp"

namespace fixture {

int run() { return 0; }

}  // namespace fixture
