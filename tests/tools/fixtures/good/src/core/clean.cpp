// Clean counterpart for every rule: ordered containers, id keys, no
// wall-clock, seeded engines, a hotpath region whose only growth is
// licensed by a visible reserve(), and only layer-legal includes.
//
// Prose mentions of rand(), srand(), std::random_device, float, and
// std::unordered_map are comment-only and must NOT trip the linter —
// comment stripping is part of what this fixture locks in.
#include "util/rng.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace fixture {

struct Msg {
  std::uint32_t id = 0;
  int payload = 0;
};

// Deterministic aggregation: std::map iterates in key order, unlike
// std::unordered_map.
int export_totals(const std::vector<Msg>& msgs) {
  std::map<std::uint32_t, int> totals;  // keyed by stable id, not pointer
  for (const Msg& m : msgs) totals[m.id] += m.payload;
  int acc = 0;
  for (const auto& kv : totals) acc = acc * 31 + kv.second;
  return acc;
}

int drain(std::vector<Msg>& scratch, const std::vector<Msg>& inbox) {
  scratch.reserve(inbox.size());
  int total = 0;
  // dmra::hotpath begin(drain-loop)
  for (const Msg& m : inbox) {
    scratch.push_back(m);  // growth licensed by the reserve above
    total += m.payload;
  }
  // dmra::hotpath end(drain-loop)
  scratch.clear();
  return total;
}

}  // namespace fixture
