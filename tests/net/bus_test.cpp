#include "net/bus.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/require.hpp"

namespace dmra {
namespace {

using StrBus = MessageBus<std::string>;

TEST(Bus, RegisterAssignsSequentialAddresses) {
  StrBus bus;
  EXPECT_EQ(bus.register_agent(), (AgentId{0}));
  EXPECT_EQ(bus.register_agent(), (AgentId{1}));
  EXPECT_EQ(bus.num_agents(), 2u);
}

TEST(Bus, MessagesInvisibleUntilDelivered) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "hello");
  EXPECT_TRUE(bus.inbox_empty(b));
  EXPECT_EQ(bus.deliver(), 1u);
  EXPECT_FALSE(bus.inbox_empty(b));
  const auto inbox = bus.take_inbox(b);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, "hello");
  EXPECT_EQ(inbox[0].from, a);
  EXPECT_EQ(inbox[0].to, b);
}

TEST(Bus, TakeInboxDrains) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.send(a, a, "x");
  bus.deliver();
  EXPECT_EQ(bus.take_inbox(a).size(), 1u);
  EXPECT_TRUE(bus.take_inbox(a).empty());
}

TEST(Bus, PerRecipientOrderFollowsSendOrder) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  const AgentId c = bus.register_agent();
  bus.send(a, c, "first");
  bus.send(b, c, "second");
  bus.send(a, c, "third");
  bus.deliver();
  const auto inbox = bus.take_inbox(c);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].payload, "first");
  EXPECT_EQ(inbox[1].payload, "second");
  EXPECT_EQ(inbox[2].payload, "third");
  EXPECT_LT(inbox[0].seq, inbox[1].seq);
  EXPECT_LT(inbox[1].seq, inbox[2].seq);
}

TEST(Bus, RoundsAdvanceOnDeliver) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  EXPECT_EQ(bus.round(), 0u);
  bus.send(a, a, "m");
  bus.deliver();
  EXPECT_EQ(bus.round(), 1u);
  bus.deliver();  // empty deliveries still tick the round
  EXPECT_EQ(bus.round(), 2u);
}

TEST(Bus, EnvelopesRecordTheSendRound) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.deliver();
  bus.send(a, a, "late");
  bus.deliver();
  const auto inbox = bus.take_inbox(a);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].sent_round, 1u);
}

TEST(Bus, StatsCountTraffic) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "1");
  bus.send(b, a, "2");
  bus.deliver();
  const BusStats& s = bus.stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.rounds, 1u);
}

TEST(Bus, StatsRenderAsText) {
  BusStats s{3, 10, 9};
  const std::string text = to_string(s);
  EXPECT_NE(text.find("rounds=3"), std::string::npos);
  EXPECT_NE(text.find("sent=10"), std::string::npos);
  EXPECT_NE(text.find("delivered=9"), std::string::npos);
}

TEST(Bus, SendToUnknownAgentIsContractViolation) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  EXPECT_THROW(bus.send(a, AgentId{5}, "x"), ContractViolation);
  EXPECT_THROW(bus.send(AgentId{5}, a, "x"), ContractViolation);
  EXPECT_THROW(bus.take_inbox(AgentId{5}), ContractViolation);
}

TEST(Bus, RegistrationAfterFirstSendIsContractViolation) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.send(a, a, "x");
  EXPECT_THROW(bus.register_agent(), ContractViolation);
}

TEST(Bus, MessagesSentDuringAPhaseArriveNextDeliver) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "r0");
  bus.deliver();
  // b reacts to r0 by sending a reply; the reply is not visible to a until
  // the next deliver.
  const auto inbox = bus.take_inbox(b);
  ASSERT_EQ(inbox.size(), 1u);
  bus.send(b, a, "reply");
  EXPECT_TRUE(bus.inbox_empty(a));
  bus.deliver();
  EXPECT_EQ(bus.take_inbox(a).at(0).payload, "reply");
}

}  // namespace
}  // namespace dmra
