#include "net/bus.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/require.hpp"

namespace dmra {
namespace {

using StrBus = MessageBus<std::string>;

TEST(Bus, RegisterAssignsSequentialAddresses) {
  StrBus bus;
  EXPECT_EQ(bus.register_agent(), (AgentId{0}));
  EXPECT_EQ(bus.register_agent(), (AgentId{1}));
  EXPECT_EQ(bus.num_agents(), 2u);
}

TEST(Bus, MessagesInvisibleUntilDelivered) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "hello");
  EXPECT_TRUE(bus.inbox_empty(b));
  EXPECT_EQ(bus.deliver(), 1u);
  EXPECT_FALSE(bus.inbox_empty(b));
  const auto inbox = bus.take_inbox(b);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, "hello");
  EXPECT_EQ(inbox[0].from, a);
  EXPECT_EQ(inbox[0].to, b);
}

TEST(Bus, TakeInboxDrains) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.send(a, a, "x");
  bus.deliver();
  EXPECT_EQ(bus.take_inbox(a).size(), 1u);
  EXPECT_TRUE(bus.take_inbox(a).empty());
}

TEST(Bus, PerRecipientOrderFollowsSendOrder) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  const AgentId c = bus.register_agent();
  bus.send(a, c, "first");
  bus.send(b, c, "second");
  bus.send(a, c, "third");
  bus.deliver();
  const auto inbox = bus.take_inbox(c);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].payload, "first");
  EXPECT_EQ(inbox[1].payload, "second");
  EXPECT_EQ(inbox[2].payload, "third");
  EXPECT_LT(inbox[0].seq, inbox[1].seq);
  EXPECT_LT(inbox[1].seq, inbox[2].seq);
}

TEST(Bus, RoundsAdvanceOnDeliver) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  EXPECT_EQ(bus.round(), 0u);
  bus.send(a, a, "m");
  bus.deliver();
  EXPECT_EQ(bus.round(), 1u);
  bus.deliver();  // empty deliveries still tick the round
  EXPECT_EQ(bus.round(), 2u);
}

TEST(Bus, EnvelopesRecordTheSendRound) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.deliver();
  bus.send(a, a, "late");
  bus.deliver();
  const auto inbox = bus.take_inbox(a);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].sent_round, 1u);
}

TEST(Bus, StatsCountTraffic) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "1");
  bus.send(b, a, "2");
  bus.deliver();
  const BusStats& s = bus.stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.rounds, 1u);
}

TEST(Bus, StatsRenderAsText) {
  BusStats s{3, 10, 9};
  const std::string text = to_string(s);
  EXPECT_NE(text.find("rounds=3"), std::string::npos);
  EXPECT_NE(text.find("sent=10"), std::string::npos);
  EXPECT_NE(text.find("delivered=9"), std::string::npos);
  // The schema is fixed: dropped= appears even on a loss-free bus, so log
  // parsers never see a field-count that depends on the loss model.
  EXPECT_NE(text.find("dropped=0"), std::string::npos);
}

TEST(Bus, StatsRenderDroppedCount) {
  BusStats s{3, 10, 9};
  s.messages_dropped = 1;
  EXPECT_NE(to_string(s).find("dropped=1"), std::string::npos);
}

TEST(Bus, SetLossAfterDeliverIsContractViolation) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.send(a, a, "x");
  bus.deliver();
  // The loss model must cover the whole run; arming it mid-run would make
  // the drop sequence depend on when the caller got around to it.
  EXPECT_THROW(bus.set_loss(0.5, 7), ContractViolation);
}

TEST(Bus, SetLossTwiceIsContractViolation) {
  StrBus bus;
  bus.set_loss(0.5, 7);
  EXPECT_THROW(bus.set_loss(0.25, 8), ContractViolation);  // re-seeding resets the RNG
}

TEST(Bus, SetLossRejectsOutOfRangeProbability) {
  StrBus bus;
  EXPECT_THROW(bus.set_loss(-0.1, 7), ContractViolation);
  EXPECT_THROW(bus.set_loss(1.0, 7), ContractViolation);
}

TEST(Bus, SendToUnknownAgentIsContractViolation) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  EXPECT_THROW(bus.send(a, AgentId{5}, "x"), ContractViolation);
  EXPECT_THROW(bus.send(AgentId{5}, a, "x"), ContractViolation);
  EXPECT_THROW(bus.take_inbox(AgentId{5}), ContractViolation);
}

TEST(Bus, RegistrationAfterFirstSendIsContractViolation) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  bus.send(a, a, "x");
  EXPECT_THROW(bus.register_agent(), ContractViolation);
}

TEST(Bus, RegistrationAfterDeliverIsContractViolation) {
  // Regression: the guard used to check only "nothing sent yet", so an
  // agent could slip in after an (empty) deliver() — growing the segment
  // tables of a delivery schedule that had already started. The sharded
  // runtime builds one bus per region on the stricter contract.
  StrBus bus;
  bus.register_agent();
  bus.deliver();
  EXPECT_THROW(bus.register_agent(), ContractViolation);
}

TEST(Bus, MessagesSentDuringAPhaseArriveNextDeliver) {
  StrBus bus;
  const AgentId a = bus.register_agent();
  const AgentId b = bus.register_agent();
  bus.send(a, b, "r0");
  bus.deliver();
  // b reacts to r0 by sending a reply; the reply is not visible to a until
  // the next deliver.
  const auto inbox = bus.take_inbox(b);
  ASSERT_EQ(inbox.size(), 1u);
  bus.send(b, a, "reply");
  EXPECT_TRUE(bus.inbox_empty(a));
  bus.deliver();
  EXPECT_EQ(bus.take_inbox(a).at(0).payload, "reply");
}

}  // namespace
}  // namespace dmra
