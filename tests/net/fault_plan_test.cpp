#include "net/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/bus.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

using IntBus = MessageBus<int>;

// Which send-sequence numbers survive a lossy schedule: spread `n`
// messages over the given recipients round-robin, deliver once, and
// collect the seq of everything that arrived anywhere.
std::vector<std::uint64_t> surviving_seqs(IntBus& bus, const std::vector<AgentId>& to,
                                          std::size_t n) {
  const AgentId sender = to.front();
  for (std::size_t i = 0; i < n; ++i)
    bus.send(sender, to[i % to.size()], static_cast<int>(i));
  bus.deliver();
  std::vector<std::uint64_t> seqs;
  for (const AgentId a : to)
    for (const auto& env : bus.take_inbox(a)) seqs.push_back(env.seq);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

// The RESILIENCE.md determinism contract: the drop stream is a function
// of (seed, send order) alone — which agent each message goes to is
// irrelevant. One inbox or many, the same seq numbers survive.
TEST(FaultPlanBus, DropStreamIndependentOfRecipients) {
  constexpr double kLoss = 0.35;
  constexpr std::size_t kMessages = 200;

  IntBus one;
  const AgentId solo = one.register_agent();
  one.set_faults(LinkFaults{.drop_probability = kLoss}, 99);
  const auto seqs_one = surviving_seqs(one, {solo}, kMessages);

  IntBus many;
  std::vector<AgentId> fan;
  for (int i = 0; i < 7; ++i) fan.push_back(many.register_agent());
  many.set_faults(LinkFaults{.drop_probability = kLoss}, 99);
  const auto seqs_many = surviving_seqs(many, fan, kMessages);

  EXPECT_LT(seqs_one.size(), kMessages);  // something actually dropped
  EXPECT_EQ(seqs_one, seqs_many);
}

TEST(FaultPlanBus, LossOnlyFaultsMatchSetLossBitForBit) {
  constexpr double kLoss = 0.25;
  constexpr std::uint64_t kSeed = 7;
  constexpr std::size_t kMessages = 300;

  IntBus legacy;
  const AgentId a = legacy.register_agent();
  legacy.set_loss(kLoss, kSeed);
  const auto legacy_seqs = surviving_seqs(legacy, {a}, kMessages);

  IntBus planned;
  const AgentId b = planned.register_agent();
  planned.set_faults(LinkFaults{.drop_probability = kLoss}, kSeed);
  const auto planned_seqs = surviving_seqs(planned, {b}, kMessages);

  EXPECT_EQ(legacy_seqs, planned_seqs);
  EXPECT_EQ(legacy.stats().messages_dropped, planned.stats().messages_dropped);
  EXPECT_EQ(planned.stats().messages_duplicated, 0u);
  EXPECT_EQ(planned.stats().messages_delayed, 0u);
}

TEST(FaultPlanBus, SameSeedSameDropsAcrossRuns) {
  const auto run = [] {
    IntBus bus;
    const AgentId a = bus.register_agent();
    bus.set_faults(LinkFaults{.drop_probability = 0.4}, 123);
    return surviving_seqs(bus, {a}, 100);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultPlanBus, DuplicateDeliversACopyNextRound) {
  IntBus bus;
  const AgentId a = bus.register_agent();
  bus.set_faults(LinkFaults{.duplicate_probability = 0.9}, 5);
  for (int i = 0; i < 50; ++i) bus.send(a, a, i);
  bus.deliver();
  const std::size_t originals = bus.take_inbox(a).size();
  EXPECT_EQ(originals, 50u);  // duplication never suppresses the original
  const std::uint64_t dups = bus.stats().messages_duplicated;
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(bus.in_flight(), dups);  // copies are queued, not yet delivered
  bus.deliver();
  EXPECT_EQ(bus.take_inbox(a).size(), dups);  // copies arrive one round later
  EXPECT_EQ(bus.in_flight(), 0u);
}

TEST(FaultPlanBus, DelayedMessagesAllArriveExactlyOnceInSeqOrder) {
  IntBus bus;
  const AgentId a = bus.register_agent();
  bus.set_faults(LinkFaults{.delay_probability = 0.7, .max_delay_rounds = 3}, 11);
  constexpr std::size_t kMessages = 120;
  for (std::size_t i = 0; i < kMessages; ++i) bus.send(a, a, static_cast<int>(i));
  std::vector<std::uint64_t> seen;
  bus.deliver();
  for (const auto& env : bus.take_inbox(a)) seen.push_back(env.seq);
  const std::size_t prompt = seen.size();
  EXPECT_LT(prompt, kMessages);  // some messages actually delayed
  while (bus.in_flight() > 0) {
    std::size_t before = seen.size();
    bus.deliver();
    for (const auto& env : bus.take_inbox(a)) seen.push_back(env.seq);
    // Within one round's late deliveries, send order is preserved.
    EXPECT_TRUE(std::is_sorted(seen.begin() + static_cast<std::ptrdiff_t>(before),
                               seen.end()));
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), kMessages);  // nothing lost, nothing duplicated
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  EXPECT_EQ(bus.stats().messages_dropped, 0u);
}

TEST(FaultPlanBus, DuplicatedAndDelayedEnvelopeArrivesExactlyTwice) {
  // The two parking paths compose: when one envelope is both duplicated
  // and delayed, the copy is due at round+1, the original at round+d, and
  // nothing else ever materializes — exactly-once per injected copy.
  bool pinned_split = false;  // saw d >= 2: copy and original in distinct rounds
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    IntBus bus;
    const AgentId a = bus.register_agent();
    bus.set_faults(LinkFaults{.duplicate_probability = 0.9,
                              .delay_probability = 0.9,
                              .max_delay_rounds = 4},
                   seed);
    bus.send(a, a, 7);
    std::vector<std::size_t> arrivals_per_deliver;
    std::size_t guard = 0;
    do {
      bus.deliver();
      std::size_t n = 0;
      for (const auto& env : bus.take_inbox(a)) {
        EXPECT_EQ(env.payload, 7);
        EXPECT_EQ(env.seq, 0u);  // copies are indistinguishable replays
        ++n;
      }
      arrivals_per_deliver.push_back(n);
    } while (bus.in_flight() > 0 && ++guard < 16);
    ASSERT_LT(guard, 16u) << "seed=" << seed;

    const BusStats& st = bus.stats();
    ASSERT_EQ(st.messages_dropped, 0u);
    std::size_t total = 0;
    for (const std::size_t n : arrivals_per_deliver) total += n;
    EXPECT_EQ(total, 1u + st.messages_duplicated) << "seed=" << seed;

    if (st.messages_duplicated == 1 && st.messages_delayed == 1 &&
        arrivals_per_deliver.size() >= 3 && arrivals_per_deliver[0] == 0 &&
        arrivals_per_deliver[1] == 1) {
      // Original delayed by d >= 2: the round+1 arrival can only be the
      // duplicate copy, and the original lands alone at round+d within
      // the max_delay window.
      EXPECT_LE(arrivals_per_deliver.size(), 1u + 4u);
      EXPECT_EQ(arrivals_per_deliver.back(), 1u);
      for (std::size_t i = 2; i + 1 < arrivals_per_deliver.size(); ++i)
        EXPECT_EQ(arrivals_per_deliver[i], 0u);
      pinned_split = true;
    }
  }
  // 64 seeds at 0.9 × 0.9 × P(d >= 2) make this effectively certain; a
  // miss means the dup/delay draw order or due rounds changed.
  EXPECT_TRUE(pinned_split);
}

TEST(FaultPlanBus, SetFaultsRejectsMisuse) {
  IntBus bus;
  bus.register_agent();
  EXPECT_THROW(bus.set_faults(LinkFaults{.drop_probability = 1.0}, 0),
               ContractViolation);
  EXPECT_THROW(
      bus.set_faults(LinkFaults{.delay_probability = 0.5, .max_delay_rounds = 0}, 0),
      ContractViolation);
  bus.set_loss(0.1, 0);
  EXPECT_THROW(bus.set_faults(LinkFaults{.drop_probability = 0.1}, 0),
               ContractViolation);  // at most one loss model per bus
}

TEST(FaultPlan, AnyReflectsEveryKnob) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.link.duplicate_probability = 0.1;
  EXPECT_TRUE(plan.any());
  plan.link.duplicate_probability = 0.0;
  plan.outages.push_back(BsOutage{BsId{0}, 3});
  EXPECT_TRUE(plan.any());
  plan.outages.clear();
  plan.degradations.push_back(CapacityDegradation{BsId{0}, 2, 0.5, 0.5});
  EXPECT_TRUE(plan.any());
}

TEST(FaultPlan, ValidateCatchesBadSchedules) {
  FaultPlan bad_bs;
  bad_bs.outages.push_back(BsOutage{BsId{9}, 1});
  EXPECT_THROW(bad_bs.validate(4), ContractViolation);

  FaultPlan bad_order;
  bad_order.outages.push_back(
      BsOutage{.bs = BsId{0}, .crash_round = 5, .recover_round = 5});
  EXPECT_THROW(bad_order.validate(4), ContractViolation);

  FaultPlan twice;
  twice.outages.push_back(BsOutage{BsId{1}, 1});
  twice.outages.push_back(BsOutage{BsId{1}, 9});
  EXPECT_THROW(twice.validate(4), ContractViolation);

  FaultPlan bad_factor;
  bad_factor.degradations.push_back(CapacityDegradation{BsId{0}, 1, 1.5, 0.5});
  EXPECT_THROW(bad_factor.validate(4), ContractViolation);

  FaultPlan ok;
  ok.link.drop_probability = 0.2;
  ok.outages.push_back(BsOutage{.bs = BsId{1}, .crash_round = 2, .recover_round = 6});
  ok.degradations.push_back(CapacityDegradation{BsId{2}, 3, 0.5, 0.5});
  EXPECT_NO_THROW(ok.validate(4));
}

TEST(FaultPlan, ScheduleHorizonIgnoresNeverRecovers) {
  FaultPlan plan;
  EXPECT_EQ(plan.schedule_horizon(), 0u);
  plan.outages.push_back(BsOutage{.bs = BsId{0}, .crash_round = 4});  // never recovers
  plan.degradations.push_back(CapacityDegradation{BsId{1}, 7, 0.5, 0.5});
  EXPECT_EQ(plan.schedule_horizon(), 7u);
  plan.outages.push_back(
      BsOutage{.bs = BsId{2}, .crash_round = 3, .recover_round = 12});
  EXPECT_EQ(plan.schedule_horizon(), 12u);
}

}  // namespace
}  // namespace dmra
