#include "topology/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/require.hpp"

namespace dmra {
namespace {

const Rect kArea{0, 0, 1200, 1200};

TEST(Placement, RegularGridPaperLayout) {
  Rng rng(1);
  const auto pts = place_bss(PlacementMethod::kRegularGrid, kArea, 25, 300.0, rng);
  ASSERT_EQ(pts.size(), 25u);
  // 5×5 at 300 m inter-site distance: adjacent sites are exactly 300 m apart.
  EXPECT_DOUBLE_EQ(distance_m(pts[0], pts[1]), 300.0);
  EXPECT_DOUBLE_EQ(distance_m(pts[0], pts[5]), 300.0);
  // All sites inside the deployment area.
  for (const Point& p : pts) EXPECT_TRUE(kArea.contains(p));
}

TEST(Placement, RegularGridNonSquareCountDropsTail) {
  Rng rng(1);
  const auto pts = place_bss(PlacementMethod::kRegularGrid, kArea, 7, 300.0, rng);
  EXPECT_EQ(pts.size(), 7u);
}

TEST(Placement, RegularGridIgnoresRng) {
  Rng rng1(1), rng2(999);
  const auto a = place_bss(PlacementMethod::kRegularGrid, kArea, 25, 300.0, rng1);
  const auto b = place_bss(PlacementMethod::kRegularGrid, kArea, 25, 300.0, rng2);
  EXPECT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Placement, RandomInsideAreaAndSeeded) {
  Rng rng1(5), rng2(5), rng3(6);
  const auto a = place_bss(PlacementMethod::kRandom, kArea, 25, 300.0, rng1);
  const auto b = place_bss(PlacementMethod::kRandom, kArea, 25, 300.0, rng2);
  const auto c = place_bss(PlacementMethod::kRandom, kArea, 25, 300.0, rng3);
  ASSERT_EQ(a.size(), 25u);
  for (const Point& p : a) EXPECT_TRUE(kArea.contains(p));
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  EXPECT_NE(a.front(), c.front());
}

TEST(Ownership, RoundRobinInterleavesNeighbours) {
  Rng rng(1);
  const auto owners = assign_owners(OwnershipPolicy::kRoundRobin, 25, 5, rng);
  ASSERT_EQ(owners.size(), 25u);
  for (std::size_t i = 0; i + 1 < owners.size(); ++i) EXPECT_NE(owners[i], owners[i + 1]);
  EXPECT_EQ(owners[0], (SpId{0}));
  EXPECT_EQ(owners[6], (SpId{1}));
}

TEST(Ownership, BothPoliciesGiveEqualShares) {
  Rng rng(7);
  for (auto policy : {OwnershipPolicy::kRoundRobin, OwnershipPolicy::kShuffled}) {
    const auto owners = assign_owners(policy, 25, 5, rng);
    std::map<std::uint32_t, int> counts;
    for (SpId sp : owners) counts[sp.value]++;
    ASSERT_EQ(counts.size(), 5u);
    for (const auto& [sp, n] : counts) EXPECT_EQ(n, 5);
  }
}

TEST(Ownership, ShuffledIsSeededPermutationOfRoundRobin) {
  Rng rng1(9), rng2(9);
  const auto a = assign_owners(OwnershipPolicy::kShuffled, 25, 5, rng1);
  const auto b = assign_owners(OwnershipPolicy::kShuffled, 25, 5, rng2);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Placement, Names) {
  EXPECT_STREQ(placement_name(PlacementMethod::kRegularGrid), "regular");
  EXPECT_STREQ(placement_name(PlacementMethod::kRandom), "random");
}

TEST(Placement, Contracts) {
  Rng rng(1);
  EXPECT_THROW(place_bss(PlacementMethod::kRandom, kArea, 0, 300.0, rng),
               ContractViolation);
  EXPECT_THROW(assign_owners(OwnershipPolicy::kRoundRobin, 0, 5, rng), ContractViolation);
  EXPECT_THROW(assign_owners(OwnershipPolicy::kRoundRobin, 5, 0, rng), ContractViolation);
}

}  // namespace
}  // namespace dmra
