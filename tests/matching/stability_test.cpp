#include "matching/stability.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>

#include "util/rng.hpp"

namespace dmra {
namespace {

PreferenceLists random_complete_prefs(std::size_t n, std::size_t m, Rng& rng) {
  PreferenceLists prefs(n);
  for (auto& list : prefs) {
    list.resize(m);
    for (std::size_t i = 0; i < m; ++i) list[i] = i;
    rng.shuffle(list);
  }
  return prefs;
}

TEST(Stability, DetectsAKnownBlockingPair) {
  // p0–a1 and p1–a0, but p0 and a0 rank each other first: blocking pair.
  const PreferenceLists pp{{0, 1}, {0, 1}};
  const PreferenceLists ap{{0, 1}, {0, 1}};
  Matching m;
  m.proposer_to_acceptor = {1, 0};
  m.acceptor_to_proposer = {1, 0};
  const auto blocks = blocking_pairs(pp, ap, m);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], std::make_pair(std::size_t{0}, std::size_t{0}));
  EXPECT_FALSE(is_stable(pp, ap, m));
}

TEST(Stability, UnmatchedMutuallyAcceptablePairBlocks) {
  const PreferenceLists pp{{0}};
  const PreferenceLists ap{{0}};
  Matching m;
  m.proposer_to_acceptor = {std::nullopt};
  m.acceptor_to_proposer = {std::nullopt};
  EXPECT_FALSE(is_stable(pp, ap, m));
}

TEST(Stability, UnacceptablePairCannotBlock) {
  // Acceptor finds the proposer unacceptable; both unmatched but no block.
  const PreferenceLists pp{{0}};
  const PreferenceLists ap{{}};
  Matching m;
  m.proposer_to_acceptor = {std::nullopt};
  m.acceptor_to_proposer = {std::nullopt};
  EXPECT_TRUE(is_stable(pp, ap, m));
}

// Property: deferred acceptance always yields a stable matching.
class StableMarriageProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StableMarriageProperty, OutputIsStable) {
  const auto [size, seed] = GetParam();
  Rng rng("sm-prop", static_cast<std::uint64_t>(seed));
  const auto n = static_cast<std::size_t>(size);
  const auto pp = random_complete_prefs(n, n, rng);
  const auto ap = random_complete_prefs(n, n, rng);
  const Matching m = stable_marriage(pp, ap);
  EXPECT_TRUE(is_stable(pp, ap, m));
  // Complete lists + equal sides → perfect matching.
  for (std::size_t p = 0; p < n; ++p) EXPECT_TRUE(m.proposer_to_acceptor[p].has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, StableMarriageProperty,
                         ::testing::Combine(::testing::Values(2, 5, 16, 40),
                                            ::testing::Values(1, 2, 3, 4, 5)));

// Property: college admissions is stable for random capacitated instances.
class CollegeAdmissionsProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CollegeAdmissionsProperty, OutputIsStable) {
  const auto [students, seed] = GetParam();
  Rng rng("ca-prop", static_cast<std::uint64_t>(seed));
  const auto n = static_cast<std::size_t>(students);
  const std::size_t colleges = n / 4 + 1;
  const auto pp = random_complete_prefs(n, colleges, rng);
  const auto ap = random_complete_prefs(colleges, n, rng);
  std::vector<std::size_t> caps(colleges);
  for (auto& c : caps) c = static_cast<std::size_t>(rng.uniform_int(0, 5));
  const ManyToOneMatching m = college_admissions(pp, ap, caps);
  EXPECT_TRUE(is_stable_many(pp, ap, caps, m));
  for (std::size_t a = 0; a < colleges; ++a) EXPECT_LE(m.acceptor_to_proposers[a].size(), caps[a]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollegeAdmissionsProperty,
                         ::testing::Combine(::testing::Values(4, 12, 30, 60),
                                            ::testing::Values(1, 2, 3, 4, 5)));

// Proposer-optimality, checked the honest way: enumerate every perfect
// matching of a small instance, keep the stable ones, and verify that the
// deferred-acceptance outcome gives every proposer their *best* partner
// across all stable matchings.
class ProposerOptimality : public ::testing::TestWithParam<int> {};

TEST_P(ProposerOptimality, GsIsBestStableOutcomeForEveryProposer) {
  Rng rng("gs-opt", static_cast<std::uint64_t>(GetParam()));
  constexpr std::size_t n = 5;
  const auto pp = random_complete_prefs(n, n, rng);
  const auto ap = random_complete_prefs(n, n, rng);
  const Matching gs = stable_marriage(pp, ap);

  const auto prank = build_rank_table(pp, n);

  // Enumerate all n! perfect matchings via permutation.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::vector<std::size_t> best_rank(n, std::numeric_limits<std::size_t>::max());
  std::size_t stable_count = 0;
  do {
    Matching m;
    m.proposer_to_acceptor.assign(n, std::nullopt);
    m.acceptor_to_proposer.assign(n, std::nullopt);
    for (std::size_t p = 0; p < n; ++p) {
      m.proposer_to_acceptor[p] = perm[p];
      m.acceptor_to_proposer[perm[p]] = p;
    }
    if (!is_stable(pp, ap, m)) continue;
    ++stable_count;
    for (std::size_t p = 0; p < n; ++p)
      best_rank[p] = std::min(best_rank[p], prank[p][perm[p]]);
  } while (std::next_permutation(perm.begin(), perm.end()));

  ASSERT_GE(stable_count, 1u);  // GS itself guarantees at least one
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_TRUE(gs.proposer_to_acceptor[p].has_value());
    EXPECT_EQ(prank[p][*gs.proposer_to_acceptor[p]], best_rank[p])
        << "proposer " << p << " did not get its best stable partner";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProposerOptimality, ::testing::Range(1, 9));

TEST(StabilityMany, SpareCapacityPlusMutualAcceptabilityBlocks) {
  const PreferenceLists pp{{0}};
  const PreferenceLists ap{{0}};
  ManyToOneMatching m;
  m.proposer_to_acceptor = {std::nullopt};
  m.acceptor_to_proposers = {{}};
  EXPECT_FALSE(is_stable_many(pp, ap, {2}, m));
}

TEST(StabilityMany, FullCollegeOnlyBlocksWhenItPrefers) {
  // College holds its favourite (0) at capacity 1; proposer 1 prefers the
  // college but the college does not prefer it → stable.
  const PreferenceLists pp{{0}, {0}};
  const PreferenceLists ap{{0, 1}};
  ManyToOneMatching m;
  m.proposer_to_acceptor = {std::size_t{0}, std::nullopt};
  m.acceptor_to_proposers = {{0}};
  EXPECT_TRUE(is_stable_many(pp, ap, {1}, m));
  // Flip the held student to the less-preferred one → now it blocks.
  m.proposer_to_acceptor = {std::nullopt, std::size_t{0}};
  m.acceptor_to_proposers = {{1}};
  EXPECT_FALSE(is_stable_many(pp, ap, {1}, m));
}

}  // namespace
}  // namespace dmra
