#include "matching/deferred_acceptance.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace dmra {
namespace {

// Textbook instance (Gale & Shapley 1962, 3×3) with known proposer-optimal
// outcome: m0–w0, m1–w2, m2–w1.
PreferenceLists gs_men() { return {{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}; }
PreferenceLists gs_women() { return {{1, 2, 0}, {2, 0, 1}, {0, 1, 2}}; }

TEST(StableMarriage, TextbookProposerOptimalOutcome) {
  const Matching m = stable_marriage(gs_men(), gs_women());
  EXPECT_EQ(m.proposer_to_acceptor[0], 0u);
  EXPECT_EQ(m.proposer_to_acceptor[1], 2u);
  EXPECT_EQ(m.proposer_to_acceptor[2], 1u);
  // Every proposer got their first choice — proposer-optimality in action.
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_EQ(*m.proposer_to_acceptor[p], gs_men()[p][0]);
}

TEST(StableMarriage, InverseMapsAreConsistent) {
  const Matching m = stable_marriage(gs_men(), gs_women());
  for (std::size_t p = 0; p < 3; ++p) {
    ASSERT_TRUE(m.proposer_to_acceptor[p].has_value());
    EXPECT_EQ(m.acceptor_to_proposer[*m.proposer_to_acceptor[p]], p);
  }
}

TEST(StableMarriage, ContestedAcceptorPicksItsFavourite) {
  // Both proposers want acceptor 0; acceptor 0 prefers proposer 1.
  const PreferenceLists pp{{0, 1}, {0, 1}};
  const PreferenceLists ap{{1, 0}, {0, 1}};
  const Matching m = stable_marriage(pp, ap);
  EXPECT_EQ(m.acceptor_to_proposer[0], 1u);
  EXPECT_EQ(m.proposer_to_acceptor[0], 1u);  // displaced to second choice
}

TEST(StableMarriage, IncompleteListsLeaveUnmatched) {
  // Proposer 1 only accepts acceptor 0, who prefers proposer 0.
  const PreferenceLists pp{{0}, {0}};
  const PreferenceLists ap{{0, 1}, {}};
  const Matching m = stable_marriage(pp, ap);
  EXPECT_EQ(m.proposer_to_acceptor[0], 0u);
  EXPECT_FALSE(m.proposer_to_acceptor[1].has_value());
  EXPECT_FALSE(m.acceptor_to_proposer[1].has_value());
}

TEST(StableMarriage, UnacceptablePairNeverMatched) {
  // Acceptor 0 lists nobody: it stays unmatched no matter what.
  const PreferenceLists pp{{0}};
  const PreferenceLists ap{{}};
  const Matching m = stable_marriage(pp, ap);
  EXPECT_FALSE(m.proposer_to_acceptor[0].has_value());
}

TEST(StableMarriage, EmptySidesAreFine) {
  const Matching m = stable_marriage({}, {});
  EXPECT_TRUE(m.proposer_to_acceptor.empty());
  EXPECT_TRUE(m.acceptor_to_proposer.empty());
}

TEST(StableMarriage, RejectsMalformedPreferences) {
  EXPECT_THROW(stable_marriage({{5}}, {{0}}), ContractViolation);       // out of range
  EXPECT_THROW(stable_marriage({{0, 0}}, {{0}}), ContractViolation);    // duplicate
}

TEST(CollegeAdmissions, CapacityBoundsHeldProposers) {
  // 4 proposers, 1 college with capacity 2 preferring low indices.
  const PreferenceLists pp{{0}, {0}, {0}, {0}};
  const PreferenceLists ap{{0, 1, 2, 3}};
  const ManyToOneMatching m = college_admissions(pp, ap, {2});
  EXPECT_EQ(m.acceptor_to_proposers[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_FALSE(m.proposer_to_acceptor[2].has_value());
  EXPECT_FALSE(m.proposer_to_acceptor[3].has_value());
}

TEST(CollegeAdmissions, LateBetterProposerDisplacesWorst) {
  // College holds {1, 2}; proposer 0 (its favourite) arrives via the free
  // queue order and displaces the worst held.
  const PreferenceLists pp{{0}, {0}, {0}};
  const PreferenceLists ap{{0, 1, 2}};
  const ManyToOneMatching m = college_admissions(pp, ap, {2});
  EXPECT_EQ(m.acceptor_to_proposers[0], (std::vector<std::size_t>{0, 1}));
}

TEST(CollegeAdmissions, DisplacedProposerFallsToSecondChoice) {
  // Two colleges; both proposers prefer college 0 (capacity 1).
  const PreferenceLists pp{{0, 1}, {0, 1}};
  const PreferenceLists ap{{0, 1}, {0, 1}};
  const ManyToOneMatching m = college_admissions(pp, ap, {1, 1});
  EXPECT_EQ(m.proposer_to_acceptor[0], 0u);
  EXPECT_EQ(m.proposer_to_acceptor[1], 1u);
}

TEST(CollegeAdmissions, ZeroCapacityCollegeTakesNobody) {
  const PreferenceLists pp{{0, 1}};
  const PreferenceLists ap{{0}, {0}};
  const ManyToOneMatching m = college_admissions(pp, ap, {0, 1});
  EXPECT_EQ(m.proposer_to_acceptor[0], 1u);
  EXPECT_TRUE(m.acceptor_to_proposers[0].empty());
}

TEST(CollegeAdmissions, CapacityVectorMustMatch) {
  EXPECT_THROW(college_admissions({{0}}, {{0}}, {1, 2}), ContractViolation);
}

TEST(RankTable, BuildsPositionsAndFlagsMissing) {
  const auto rank = build_rank_table({{2, 0}}, 3);
  ASSERT_EQ(rank.size(), 1u);
  EXPECT_EQ(rank[0][2], 0u);
  EXPECT_EQ(rank[0][0], 1u);
  EXPECT_EQ(rank[0][1], std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace dmra
