#include "market/adaptive_pricing.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/dmra_allocator.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

// ---- price multipliers in the core model --------------------------------------

TEST(PriceMultiplier, ScalesThePairPrice) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {100, 0}, ServiceId{0});
  ms.data().bss[0].price_multiplier = 1.25;
  const Scenario s = ms.build();
  EXPECT_DOUBLE_EQ(s.price(UeId{0}, BsId{0}),
                   1.25 * cru_price(s.pricing(), 100.0, true));
  // Profit shrinks accordingly.
  const double margin = s.pricing().m_k - s.price(UeId{0}, BsId{0}) - s.pricing().m_k_o;
  EXPECT_DOUBLE_EQ(s.pair_profit(UeId{0}, BsId{0}), 4.0 * margin);
}

TEST(PriceMultiplier, SteersDmraAwayFromExpensiveBs) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_bs(sp, {120, 0});
  ms.add_ue(sp, {50, 0}, ServiceId{0});  // nearer to BS 0
  // ...but BS 0 became pricey (1.35 stays under the Eq. 16 cap of ≈1.43).
  ms.data().bss[0].price_multiplier = 1.35;
  const Scenario s = ms.build();
  const DmraResult r = solve_dmra(s, {.rho = 0.0});
  EXPECT_EQ(r.allocation.bs_of(UeId{0}), (BsId{1}));
}

TEST(PriceMultiplier, Eq16ValidationUsesTheMultiplier) {
  test::MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0, 0});
  ms.add_ue(sp, {10, 0}, ServiceId{0});
  // Safe max at 500 m: (6−1)/(2+1.5) ≈ 1.43 — go above it.
  ms.data().bss[0].price_multiplier = 1.6;
  EXPECT_THROW(ms.build(), ContractViolation);
}

TEST(PriceMultiplier, FeasibilityFlagsUnprofitablePairs) {
  test::MiniScenario ms;
  const SpId sp0 = ms.add_sp();
  const SpId sp1 = ms.add_sp();
  ms.add_bs(sp0, {0, 0});
  ms.add_bs(sp1, {600, 0});  // irrelevant filler
  ms.add_ue(sp1, {450, 0}, ServiceId{0});  // cross-SP at 450 m from BS 0
  ms.data().bss[0].price_multiplier = 1.4;  // valid at build time (≈1.43 cap)
  const Scenario s = ms.build();
  Allocation a(1);
  a.assign(UeId{0}, BsId{0});
  // price = 1.4·(2 + 1.35) = 4.69 < 6 − 1 → still fine...
  EXPECT_TRUE(check_feasibility(s, a).ok);
}

TEST(PriceMultiplier, SafeMaxFormula) {
  const PricingConfig pricing;
  const double cap = eq16_safe_max_multiplier(pricing, 500.0);
  // (m_k − m_k_o) / worst cross price = 5 / 3.5 ≈ 1.428.
  EXPECT_NEAR(cap, 5.0 / 3.5, 1e-6);
  // At the cap the pair is right at the profitability boundary.
  EXPECT_GT(pricing.m_k, cap * cru_price(pricing, 500.0, false) + pricing.m_k_o - 1e-6);
}

// ---- the adaptation loop -------------------------------------------------------

AdaptivePricingConfig loop_config(std::size_t ues = 900) {
  AdaptivePricingConfig cfg;
  cfg.scenario.num_ues = ues;
  cfg.rounds = 10;
  cfg.seed = 3;
  return cfg;
}

TEST(AdaptivePricing, RunsAndStaysEq16Safe) {
  const DmraAllocator algo;
  const AdaptivePricingResult r = run_adaptive_pricing(loop_config(), algo);
  ASSERT_EQ(r.rounds.size(), 10u);
  const double cap = eq16_safe_max_multiplier(PricingConfig{}, 500.0);
  for (double m : r.final_multipliers) {
    EXPECT_GE(m, 0.6 - 1e-12);
    EXPECT_LE(m, std::min(1.6, cap) + 1e-12);
  }
}

TEST(AdaptivePricing, StepsShrinkAsItConverges) {
  const DmraAllocator algo;
  const AdaptivePricingResult r = run_adaptive_pricing(loop_config(), algo);
  const double early = r.rounds[1].max_multiplier_change;
  const double late = r.rounds.back().max_multiplier_change;
  EXPECT_LE(late, early);
}

TEST(AdaptivePricing, CongestionRaisesPricesUnderLoad) {
  // Heavily loaded system: mean utilization above target → mean
  // multiplier drifts upward from 1.0.
  AdaptivePricingConfig cfg = loop_config(1400);
  cfg.target_utilization = 0.5;
  const DmraAllocator algo;
  const AdaptivePricingResult r = run_adaptive_pricing(cfg, algo);
  EXPECT_GT(r.rounds.back().multiplier_mean, 1.0);
}

TEST(AdaptivePricing, IdleSystemCutsPrices) {
  AdaptivePricingConfig cfg = loop_config(100);  // almost empty network
  cfg.target_utilization = 0.8;
  const DmraAllocator algo;
  const AdaptivePricingResult r = run_adaptive_pricing(cfg, algo);
  EXPECT_LT(r.rounds.back().multiplier_mean, 1.0);
}

TEST(AdaptivePricing, Deterministic) {
  const DmraAllocator algo;
  const AdaptivePricingResult a = run_adaptive_pricing(loop_config(), algo);
  const AdaptivePricingResult b = run_adaptive_pricing(loop_config(), algo);
  ASSERT_EQ(a.final_multipliers.size(), b.final_multipliers.size());
  for (std::size_t i = 0; i < a.final_multipliers.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_multipliers[i], b.final_multipliers[i]);
}

TEST(AdaptivePricing, TableHasOneRowPerRound) {
  const DmraAllocator algo;
  const AdaptivePricingResult r = run_adaptive_pricing(loop_config(), algo);
  EXPECT_EQ(r.to_table().num_rows(), r.rounds.size());
}

TEST(AdaptivePricing, Contracts) {
  const DmraAllocator algo;
  AdaptivePricingConfig cfg = loop_config();
  cfg.rounds = 0;
  EXPECT_THROW(run_adaptive_pricing(cfg, algo), ContractViolation);
  cfg = loop_config();
  cfg.target_utilization = 0.0;
  EXPECT_THROW(run_adaptive_pricing(cfg, algo), ContractViolation);
  cfg = loop_config();
  cfg.min_multiplier = 2.0;  // above the Eq. 16 cap
  cfg.max_multiplier = 2.5;
  EXPECT_THROW(run_adaptive_pricing(cfg, algo), ContractViolation);
}

}  // namespace
}  // namespace dmra
