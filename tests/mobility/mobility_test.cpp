#include <gtest/gtest.h>

#include <cmath>

#include "core/dmra_allocator.hpp"
#include "mobility/handover.hpp"
#include "mobility/models.hpp"
#include "sim/feasibility.hpp"
#include "util/require.hpp"

namespace dmra {
namespace {

const Rect kArea{0, 0, 1200, 1200};

std::vector<Point> grid_population(std::size_t n) {
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({100.0 + 10.0 * static_cast<double>(i % 30),
                   100.0 + 10.0 * static_cast<double>(i / 30)});
  return pts;
}

TEST(StaticModel, NeverMoves) {
  auto model = make_static(grid_population(10));
  const std::vector<Point> before = model->positions();
  model->advance(100.0);
  EXPECT_EQ(model->positions(), before);
}

TEST(RandomWaypoint, MovesEveryoneWithinBounds) {
  RandomWaypointConfig cfg;
  cfg.area = kArea;
  auto model = make_random_waypoint(grid_population(50), cfg, Rng("rw", 1));
  const std::vector<Point> before = model->positions();
  model->advance(10.0);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!(model->positions()[i] == before[i])) ++moved;
    EXPECT_TRUE(kArea.contains(model->positions()[i]));
  }
  EXPECT_EQ(moved, before.size());  // no pause → everyone in motion
}

TEST(RandomWaypoint, SpeedBoundsRespected) {
  RandomWaypointConfig cfg;
  cfg.area = kArea;
  cfg.speed_min_mps = 2.0;
  cfg.speed_max_mps = 4.0;
  auto model = make_random_waypoint(grid_population(40), cfg, Rng("rw", 2));
  const double dt = 1.0;
  for (int step = 0; step < 20; ++step) {
    const std::vector<Point> before = model->positions();
    model->advance(dt);
    for (std::size_t i = 0; i < before.size(); ++i) {
      const double moved = distance_m(before[i], model->positions()[i]);
      // Waypoint arrivals + re-targeting can shorten a step, never extend it.
      EXPECT_LE(moved, cfg.speed_max_mps * dt + 1e-9);
    }
  }
}

TEST(RandomWaypoint, PauseHoldsPosition) {
  RandomWaypointConfig cfg;
  cfg.area = Rect{0, 0, 10, 10};  // tiny area → waypoints reached instantly
  cfg.pause_s = 1e9;              // then pause ~forever
  auto model = make_random_waypoint({{5, 5}}, cfg, Rng("rw", 3));
  model->advance(100.0);  // reaches the first waypoint and parks
  const Point parked = model->positions()[0];
  model->advance(100.0);
  EXPECT_EQ(model->positions()[0], parked);
}

TEST(RandomWaypoint, DeterministicPerSeed) {
  RandomWaypointConfig cfg;
  cfg.area = kArea;
  auto a = make_random_waypoint(grid_population(20), cfg, Rng("rw", 7));
  auto b = make_random_waypoint(grid_population(20), cfg, Rng("rw", 7));
  a->advance(5.0);
  b->advance(5.0);
  EXPECT_EQ(a->positions(), b->positions());
}

TEST(GaussMarkov, StaysInBoundsUnderLongRuns) {
  GaussMarkovConfig cfg;
  cfg.area = kArea;
  cfg.mean_speed_mps = 20.0;
  auto model = make_gauss_markov(grid_population(30), cfg, Rng("gm", 1));
  for (int step = 0; step < 200; ++step) {
    model->advance(1.0);
    for (const Point& p : model->positions()) EXPECT_TRUE(kArea.contains(p));
  }
}

TEST(GaussMarkov, HighAlphaMeansSmootherPaths) {
  // With α → 1 consecutive displacement vectors stay correlated; with
  // α = 0 they are fresh draws. Compare mean turn angle proxies.
  auto turn_proxy = [](double alpha) {
    GaussMarkovConfig cfg;
    cfg.area = Rect{0, 0, 100000, 100000};  // avoid reflections
    cfg.alpha = alpha;
    std::vector<Point> start(40, Point{50000, 50000});
    auto model = make_gauss_markov(start, cfg, Rng("gm", 5));
    std::vector<Point> prev = model->positions();
    model->advance(1.0);
    std::vector<Point> mid = model->positions();
    model->advance(1.0);
    std::vector<Point> end = model->positions();
    double dot_sum = 0.0;
    for (std::size_t i = 0; i < prev.size(); ++i) {
      const Point v1{mid[i].x - prev[i].x, mid[i].y - prev[i].y};
      const Point v2{end[i].x - mid[i].x, end[i].y - mid[i].y};
      const double n1 = std::hypot(v1.x, v1.y);
      const double n2 = std::hypot(v2.x, v2.y);
      if (n1 > 0 && n2 > 0) dot_sum += (v1.x * v2.x + v1.y * v2.y) / (n1 * n2);
    }
    return dot_sum / static_cast<double>(prev.size());
  };
  EXPECT_GT(turn_proxy(0.95), turn_proxy(0.0));
}

TEST(Models, Contracts) {
  RandomWaypointConfig bad;
  bad.speed_min_mps = 0.0;
  EXPECT_THROW(make_random_waypoint(grid_population(1), bad, Rng("x", 1)),
               ContractViolation);
  GaussMarkovConfig gm;
  gm.alpha = 1.0;
  EXPECT_THROW(make_gauss_markov(grid_population(1), gm, Rng("x", 1)), ContractViolation);
  auto model = make_static(grid_population(1));
  EXPECT_THROW(model->advance(-1.0), ContractViolation);
}

// ---- handover study -----------------------------------------------------------

HandoverConfig study_config(MobilityKind kind, std::size_t ues = 250) {
  HandoverConfig cfg;
  cfg.scenario.num_ues = ues;
  cfg.mobility = kind;
  cfg.steps = 6;
  cfg.step_duration_s = 2.0;
  cfg.seed = 3;
  return cfg;
}

TEST(Handover, StaticPopulationNeverHandsOver) {
  const DmraAllocator algo;
  const HandoverResult r = run_handover_study(study_config(MobilityKind::kStatic), algo);
  for (const HandoverStepStats& s : r.steps) {
    EXPECT_EQ(s.handovers, 0u);
    EXPECT_EQ(s.edge_to_cloud, 0u);
    EXPECT_EQ(s.cloud_to_edge, 0u);
    EXPECT_DOUBLE_EQ(s.mean_displacement_m, 0.0);
  }
  EXPECT_DOUBLE_EQ(r.handover_rate, 0.0);
}

TEST(Handover, MovingPopulationChurns) {
  const DmraAllocator algo;
  HandoverConfig cfg = study_config(MobilityKind::kRandomWaypoint);
  cfg.waypoint.speed_min_mps = 10.0;
  cfg.waypoint.speed_max_mps = 20.0;
  const HandoverResult r = run_handover_study(cfg, algo);
  std::uint64_t handovers = 0;
  for (const HandoverStepStats& s : r.steps) {
    handovers += s.handovers;
    EXPECT_GT(s.mean_displacement_m, 0.0);
  }
  EXPECT_GT(handovers, 0u);
  EXPECT_GT(r.handover_rate, 0.0);
}

TEST(Handover, FasterMovementMeansMoreChurn) {
  const DmraAllocator algo;
  auto rate_at = [&](double vmin, double vmax) {
    HandoverConfig cfg = study_config(MobilityKind::kRandomWaypoint);
    cfg.steps = 8;
    cfg.waypoint.speed_min_mps = vmin;
    cfg.waypoint.speed_max_mps = vmax;
    return run_handover_study(cfg, algo).handover_rate;
  };
  EXPECT_LT(rate_at(0.5, 1.0), rate_at(20.0, 30.0));
}

TEST(Handover, EveryStepAllocationIsFeasible) {
  // The study rebuilds scenarios internally; spot-check by reproducing
  // one step's scenario and allocation.
  const DmraAllocator algo;
  const HandoverConfig cfg = study_config(MobilityKind::kGaussMarkov, 150);
  const HandoverResult r = run_handover_study(cfg, algo);
  ASSERT_EQ(r.steps.size(), cfg.steps);
  for (const HandoverStepStats& s : r.steps) EXPECT_GT(s.profit, 0.0);
}

TEST(Handover, Deterministic) {
  const DmraAllocator algo;
  const HandoverConfig cfg = study_config(MobilityKind::kGaussMarkov, 120);
  const HandoverResult a = run_handover_study(cfg, algo);
  const HandoverResult b = run_handover_study(cfg, algo);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.steps[i].profit, b.steps[i].profit);
    EXPECT_EQ(a.steps[i].handovers, b.steps[i].handovers);
  }
}

TEST(Handover, KindNames) {
  EXPECT_STREQ(mobility_kind_name(MobilityKind::kStatic), "static");
  EXPECT_STREQ(mobility_kind_name(MobilityKind::kRandomWaypoint), "random-waypoint");
  EXPECT_STREQ(mobility_kind_name(MobilityKind::kGaussMarkov), "gauss-markov");
}

}  // namespace
}  // namespace dmra
