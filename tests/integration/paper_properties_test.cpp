// Property-style checks of the paper's qualitative claims, parameterized
// over seeds so a single lucky draw cannot carry the suite.
#include <gtest/gtest.h>

#include "dmra/dmra.hpp"

namespace dmra {
namespace {

class SeededProperty : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const { return static_cast<std::uint64_t>(GetParam()); }
};

Scenario scenario_with(std::uint64_t seed, std::size_t ues, double iota,
                       double activity = 0.0) {
  ScenarioConfig cfg;
  cfg.num_ues = ues;
  cfg.pricing.iota = iota;
  cfg.interference_activity_factor = activity;
  return generate_scenario(cfg, seed);
}

TEST_P(SeededProperty, AllConstraintsHoldForEveryAllocator) {
  const Scenario s = scenario_with(seed(), 900, 2.0);
  std::vector<AllocatorPtr> algos;
  algos.push_back(std::make_unique<DmraAllocator>());
  algos.push_back(std::make_unique<DecentralizedDmraAllocator>());
  algos.push_back(std::make_unique<DcspAllocator>());
  algos.push_back(std::make_unique<NonCoAllocator>());
  algos.push_back(std::make_unique<GreedyProfitAllocator>());
  algos.push_back(std::make_unique<RandomAllocator>(seed()));
  for (const auto& algo : algos) {
    const FeasibilityReport r = check_feasibility(s, algo->allocate(s));
    EXPECT_TRUE(r.ok) << algo->name()
                      << (r.violations.empty() ? "" : ": " + r.violations.front());
  }
}

TEST_P(SeededProperty, DmraFavoursOwnSpMoreThanBaselines) {
  const Scenario s = scenario_with(seed(), 800, 2.0);
  const double dmra = same_sp_ratio(s, DmraAllocator().allocate(s));
  const double nonco = same_sp_ratio(s, NonCoAllocator().allocate(s));
  const double dcsp = same_sp_ratio(s, DcspAllocator().allocate(s));
  EXPECT_GT(dmra, nonco);
  EXPECT_GT(dmra, dcsp);
  // With 5 SPs a SP-blind scheme lands near 1/5 by symmetry.
  EXPECT_NEAR(nonco, 0.2, 0.1);
}

TEST_P(SeededProperty, HigherIotaPushesTrafficOntoOwnBss) {
  const Scenario low = scenario_with(seed(), 800, 1.1);
  const Scenario high = scenario_with(seed(), 800, 2.0);
  EXPECT_GE(same_sp_ratio(high, DmraAllocator().allocate(high)),
            same_sp_ratio(low, DmraAllocator().allocate(low)));
}

TEST_P(SeededProperty, DmraAdvantageOverNonCoGrowsWithIota) {
  // The paper's Figs. 2 vs 4 claim: the DMRA edge is bigger at ι = 2.
  const Scenario low = scenario_with(seed(), 800, 1.1);
  const Scenario high = scenario_with(seed(), 800, 2.0);
  const double edge_low = total_profit(low, DmraAllocator().allocate(low)) -
                          total_profit(low, NonCoAllocator().allocate(low));
  const double edge_high = total_profit(high, DmraAllocator().allocate(high)) -
                           total_profit(high, NonCoAllocator().allocate(high));
  EXPECT_GT(edge_high, edge_low);
}

TEST_P(SeededProperty, ServedPlusCloudIsEveryone) {
  const Scenario s = scenario_with(seed(), 1000, 2.0);
  const Allocation a = DmraAllocator().allocate(s);
  EXPECT_EQ(a.num_served() + a.num_cloud(), s.num_ues());
}

TEST(PaperProperties, RhoReducesForwardedTrafficOnAverage) {
  // Fig. 7's direction. The effect is a few percent per scenario and can
  // be outweighed by a single seed's draw, so assert the seed-averaged
  // trend between the sweep endpoints (exactly what the figure plots).
  RunningStats low, high;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Scenario s = scenario_with(seed, 1000, 1.1);
    low.add(evaluate(s, DmraAllocator({.rho = 0.0}).allocate(s)).forwarded_traffic_mbps);
    high.add(
        evaluate(s, DmraAllocator({.rho = 300.0}).allocate(s)).forwarded_traffic_mbps);
  }
  EXPECT_LT(high.mean(), low.mean());
}

TEST_P(SeededProperty, InterferenceOnlyHurts) {
  const Scenario clean = scenario_with(seed(), 700, 2.0, 0.0);
  const Scenario noisy = scenario_with(seed(), 700, 2.0, 0.1);
  const RunMetrics mc = evaluate(clean, DmraAllocator().allocate(clean));
  const RunMetrics mn = evaluate(noisy, DmraAllocator().allocate(noisy));
  EXPECT_LE(mn.served, mc.served);
}

TEST_P(SeededProperty, DmraWithinReachOfCentralizedGreedy) {
  const Scenario s = scenario_with(seed(), 700, 2.0);
  const double dmra = total_profit(s, DmraAllocator().allocate(s));
  const double greedy = total_profit(s, GreedyProfitAllocator().allocate(s));
  EXPECT_GT(dmra, 0.85 * greedy);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace dmra
