// Whole-system tests on the paper's default deployment: every allocator on
// a real generated scenario, cross-checked against the constraints, each
// other, and the decentralized runtime.
#include <gtest/gtest.h>

#include "dmra/dmra.hpp"

namespace dmra {
namespace {

Scenario paper_scenario(std::size_t ues, std::uint64_t seed, double iota = 2.0,
                        PlacementMethod placement = PlacementMethod::kRegularGrid) {
  ScenarioConfig cfg;
  cfg.num_ues = ues;
  cfg.pricing.iota = iota;
  cfg.placement = placement;
  return generate_scenario(cfg, seed);
}

TEST(EndToEnd, FullPipelineOnPaperDefaults) {
  const Scenario s = paper_scenario(800, 42);
  const DmraResult r = solve_dmra(s);
  ASSERT_TRUE(check_feasibility(s, r.allocation).ok);
  const RunMetrics m = evaluate(s, r.allocation);
  EXPECT_GT(m.total_profit, 0.0);
  EXPECT_GT(m.served, 700u);  // paper regime: most of 800 UEs fit at the edge
  EXPECT_GT(m.same_sp_ratio, 0.5);  // ι=2 pushes traffic onto own BSs
}

TEST(EndToEnd, DmraBeatsPaperBaselinesAtModerateLoad) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const Scenario s = paper_scenario(700, seed);
    const double dmra = total_profit(s, DmraAllocator().allocate(s));
    const double dcsp = total_profit(s, DcspAllocator().allocate(s));
    const double nonco = total_profit(s, NonCoAllocator().allocate(s));
    EXPECT_GT(dmra, dcsp) << "seed " << seed;
    EXPECT_GT(dmra, nonco) << "seed " << seed;
  }
}

TEST(EndToEnd, DmraBeatsBaselinesOnRandomPlacementToo) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Scenario s = paper_scenario(700, seed, 2.0, PlacementMethod::kRandom);
    const double dmra = total_profit(s, DmraAllocator().allocate(s));
    EXPECT_GT(dmra, total_profit(s, DcspAllocator().allocate(s)));
    EXPECT_GT(dmra, total_profit(s, NonCoAllocator().allocate(s)));
  }
}

TEST(EndToEnd, DecentralizedRuntimeReproducesTheFigures) {
  const Scenario s = paper_scenario(600, 7);
  const DmraResult direct = solve_dmra(s);
  const DecentralizedResult dec = run_decentralized_dmra(s);
  ASSERT_EQ(dec.dmra.allocation, direct.allocation);
  EXPECT_DOUBLE_EQ(total_profit(s, dec.dmra.allocation),
                   total_profit(s, direct.allocation));
}

TEST(EndToEnd, ProfitGrowsWithLoadThenSaturates) {
  // The Figs. 2–5 x-axis shape: rising profit with diminishing increments.
  std::vector<double> profits;
  for (std::size_t ues : {400u, 700u, 1000u, 1600u}) {
    RunningStats stat;
    for (std::uint64_t seed : {1ull, 2ull, 3ull})
      stat.add(total_profit(paper_scenario(ues, seed),
                            DmraAllocator().allocate(paper_scenario(ues, seed))));
    profits.push_back(stat.mean());
  }
  EXPECT_LT(profits[0], profits[1]);
  EXPECT_LT(profits[1], profits[2]);
  // Diminishing returns: the last step (+600 UEs) adds less than the
  // first (+300 UEs) — saturation.
  EXPECT_LT(profits[3] - profits[2], profits[1] - profits[0]);
}

TEST(EndToEnd, CloudOverflowAppearsUnderOverload) {
  const Scenario light = paper_scenario(300, 9);
  const Scenario heavy = paper_scenario(1600, 9);
  const RunMetrics ml = evaluate(light, DmraAllocator().allocate(light));
  const RunMetrics mh = evaluate(heavy, DmraAllocator().allocate(heavy));
  EXPECT_EQ(ml.cloud, 0u);
  EXPECT_GT(mh.cloud, 100u);
  EXPECT_GT(mh.forwarded_traffic_mbps, ml.forwarded_traffic_mbps);
}

TEST(EndToEnd, ExperimentRunnerReproducesFig2Shape) {
  ExperimentSpec spec;
  spec.title = "fig2-mini";
  spec.xs = {400, 900};
  spec.seeds = {1, 2};
  spec.make_config = [](double x) {
    ScenarioConfig cfg;
    cfg.num_ues = static_cast<std::size_t>(x);
    return cfg;
  };
  spec.make_allocators = [](double) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    algos.push_back(std::make_unique<DcspAllocator>());
    algos.push_back(std::make_unique<NonCoAllocator>());
    return algos;
  };
  const ExperimentResult r = run_experiment(spec);
  for (std::size_t x = 0; x < r.xs.size(); ++x) {
    EXPECT_GT(r.cells[x][0].mean, r.cells[x][1].mean);  // DMRA > DCSP
    EXPECT_GT(r.cells[x][0].mean, r.cells[x][2].mean);  // DMRA > NonCo
  }
  EXPECT_GT(r.cells[1][0].mean, r.cells[0][0].mean);  // profit rises with UEs
}

TEST(EndToEnd, GreedyCentralizedIsAnUpperReference) {
  // Full global knowledge should not lose to the decentralized schemes by
  // much; it normally wins. We assert the weaker, robust direction: greedy
  // is at least 90% of DMRA and usually above it.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Scenario s = paper_scenario(800, seed);
    const double dmra = total_profit(s, DmraAllocator().allocate(s));
    const double greedy = total_profit(s, GreedyProfitAllocator().allocate(s));
    EXPECT_GT(greedy, 0.9 * dmra) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dmra
