#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace dmra {
namespace {

Cli make_cli() {
  Cli cli;
  cli.add_flag("ues", "500", "UE count");
  cli.add_flag("rho", "100.5", "rho");
  cli.add_flag("verbose", "false", "verbosity");
  cli.add_flag("list", "1,2,3", "a list");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("ues"), 500);
  EXPECT_DOUBLE_EQ(cli.get_double("rho"), 100.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
}

TEST(Cli, SpaceSeparatedForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--ues", "900"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("ues"), 900);
}

TEST(Cli, EqualsForm) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--rho=42.25", "--verbose=true"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("rho"), 42.25);
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagFailsWithMessage) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--nope", "1"};
  std::string error;
  EXPECT_FALSE(cli.parse(3, argv, &error));
  EXPECT_NE(error.find("nope"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--ues"};
  std::string error;
  EXPECT_FALSE(cli.parse(2, argv, &error));
  EXPECT_NE(error.find("missing"), std::string::npos);
}

TEST(Cli, PositionalArgumentFails) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  std::string error;
  EXPECT_FALSE(cli.parse(2, argv, &error));
}

TEST(Cli, HelpRequested) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  const std::string help = cli.help_text("prog");
  EXPECT_NE(help.find("--ues"), std::string::npos);
  EXPECT_NE(help.find("500"), std::string::npos);
}

TEST(Cli, DoubleListParsing) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--list=400,500.5,600"};
  ASSERT_TRUE(cli.parse(2, argv));
  const std::vector<double> xs = cli.get_double_list("list");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 400.0);
  EXPECT_DOUBLE_EQ(xs[1], 500.5);
  EXPECT_DOUBLE_EQ(xs[2], 600.0);
}

TEST(Cli, BadNumbersAreContractViolations) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--ues=abc", "--rho=x", "--verbose=maybe", "--list=1,zz"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_THROW(cli.get_int("ues"), ContractViolation);
  EXPECT_THROW(cli.get_double("rho"), ContractViolation);
  EXPECT_THROW(cli.get_bool("verbose"), ContractViolation);
  EXPECT_THROW(cli.get_double_list("list"), ContractViolation);
}

TEST(Cli, UndeclaredLookupIsContractViolation) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get_string("ghost"), ContractViolation);
}

TEST(Cli, DuplicateDeclarationIsContractViolation) {
  Cli cli;
  cli.add_flag("x", "1", "first");
  EXPECT_THROW(cli.add_flag("x", "2", "again"), ContractViolation);
}

TEST(Cli, BoolAcceptsManySpellings) {
  Cli cli;
  cli.add_flag("a", "yes", "");
  cli.add_flag("b", "0", "");
  cli.add_flag("c", "no", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_FALSE(cli.get_bool("b"));
  EXPECT_FALSE(cli.get_bool("c"));
}

TEST(Cli, ValuesSnapshotsEveryFlagWithEffectiveValue) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--ues=900"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto values = cli.values();
  ASSERT_EQ(values.size(), 4u);  // every declared flag, set or not
  EXPECT_EQ(values.at("ues"), "900");
  EXPECT_EQ(values.at("rho"), "100.5");  // default survives
  EXPECT_EQ(values.at("verbose"), "false");
  EXPECT_EQ(values.at("list"), "1,2,3");
}

TEST(Cli, IsSetDistinguishesExplicitFromDefault) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--ues=500"};  // explicit, equal to default
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.is_set("ues"));
  EXPECT_FALSE(cli.is_set("rho"));
  EXPECT_THROW(cli.is_set("ghost"), ContractViolation);
}

}  // namespace
}  // namespace dmra
