#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/require.hpp"

namespace dmra {
namespace {

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, StderrShrinksWithSamples) {
  RunningStats a, b;
  for (int i = 0; i < 10; ++i) a.add(i % 2 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) b.add(i % 2 ? 1.0 : -1.0);
  EXPECT_GT(a.stderr_mean(), b.stderr_mean());
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole, left, right;
  const double xs[] = {1.5, -2.0, 3.25, 0.0, 9.5, -1.25, 4.0};
  for (int i = 0; i < 7; ++i) {
    whole.add(xs[i]);
    (i < 3 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Summarize, FullSummary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 7.5);
}

TEST(Percentile, Contracts) {
  EXPECT_THROW(percentile({}, 0.5), ContractViolation);
  EXPECT_THROW(percentile({1.0}, 1.5), ContractViolation);
}

TEST(Welch, KnownSeparatedSamples) {
  // Two clearly separated samples: significant, positive t.
  RunningStats a, b;
  for (double x : {10.0, 11.0, 9.0, 10.5, 9.5}) a.add(x);
  for (double x : {5.0, 5.5, 4.5, 5.2, 4.8}) b.add(x);
  const WelchResult r = welch_t_test(a, b);
  EXPECT_GT(r.t, 4.0);
  EXPECT_TRUE(r.significant_95);
  // Antisymmetric in the arguments.
  const WelchResult flipped = welch_t_test(b, a);
  EXPECT_NEAR(flipped.t, -r.t, 1e-12);
}

TEST(Welch, OverlappingSamplesNotSignificant) {
  RunningStats a, b;
  for (double x : {10.0, 12.0, 8.0, 11.0, 9.0}) a.add(x);
  for (double x : {9.5, 11.5, 8.5, 10.5, 10.0}) b.add(x);
  EXPECT_FALSE(welch_t_test(a, b).significant_95);
}

TEST(Welch, HandComputedStatistic) {
  // means 3 and 1, variances 1 and 1, n = 4 each → t = 2/sqrt(0.5), df = 6.
  const WelchResult r = welch_t_test(3.0, 1.0, 4, 1.0, 1.0, 4);
  EXPECT_NEAR(r.t, 2.0 / std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(r.df, 6.0, 1e-9);
  EXPECT_TRUE(r.significant_95);  // critical at df=6 is 2.447 < 2.83
}

TEST(Welch, DegenerateConstantSamples) {
  const WelchResult same = welch_t_test(2.0, 0.0, 3, 2.0, 0.0, 3);
  EXPECT_FALSE(same.significant_95);
  const WelchResult differ = welch_t_test(2.0, 0.0, 3, 1.0, 0.0, 3);
  EXPECT_TRUE(differ.significant_95);
  EXPECT_TRUE(std::isinf(differ.t));
}

TEST(Welch, Contracts) {
  EXPECT_THROW(welch_t_test(0.0, 1.0, 1, 0.0, 1.0, 5), ContractViolation);
  EXPECT_THROW(welch_t_test(0.0, -1.0, 5, 0.0, 1.0, 5), ContractViolation);
}

TEST(TCritical, TableValuesAndAsymptote) {
  EXPECT_NEAR(t_critical_95(1.0), 12.706, 1e-9);
  EXPECT_NEAR(t_critical_95(6.0), 2.447, 1e-9);
  EXPECT_NEAR(t_critical_95(29.0), 2.045, 1e-9);
  EXPECT_NEAR(t_critical_95(1e6), 1.96, 1e-9);
  // Monotone decreasing.
  EXPECT_GT(t_critical_95(2.0), t_critical_95(10.0));
  EXPECT_GT(t_critical_95(10.0), t_critical_95(100.0));
  EXPECT_THROW(t_critical_95(0.0), ContractViolation);
}

TEST(Ci95, ZeroForTinySamplesAndScalesWithStderr) {
  RunningStats s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(ci95_halfwidth(s), 0.0);
  s.add(3.0);
  EXPECT_NEAR(ci95_halfwidth(s), 1.96 * s.stderr_mean(), 1e-12);
  EXPECT_GT(ci95_halfwidth(s), 0.0);
}

}  // namespace
}  // namespace dmra
