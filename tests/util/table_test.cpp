#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Table, AlignedOutputPadsColumns) {
  Table t({"a", "long-header"});
  t.add_row({"wide-cell", "x"});
  const std::string out = t.to_aligned();
  // Header line, separator, one row.
  std::istringstream is(out);
  std::string header, sep, row;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row);
  EXPECT_NE(header.find("long-header"), std::string::npos);
  EXPECT_NE(row.find("wide-cell"), std::string::npos);
  // Second column starts at the same offset in header and row.
  EXPECT_EQ(header.find("long-header"), row.find('x'));
  EXPECT_GE(sep.size(), header.size() - 2);
}

TEST(Table, RowWidthMismatchIsContractViolation) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, Counts) {
  Table t({"x", "y"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, CsvBasic) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"v"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  t.add_row({"line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(FmtPm, CombinesMeanAndHalfwidth) {
  EXPECT_EQ(fmt_pm(10.0, 0.5), "10.00 ± 0.50");
}

TEST(Table, PrintWritesAlignedForm) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_aligned());
}

}  // namespace
}  // namespace dmra
