#include "util/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/require.hpp"

namespace dmra {
namespace {

JsonValue parse_ok(const std::string& text) {
  const JsonParseResult r = json_parse(text);
  EXPECT_TRUE(r.ok) << r.error << " at " << r.offset;
  return r.value;
}

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(JsonValue(nullptr).dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-3.5).dump(), "-3.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, NumbersKeepPrecision) {
  const double v = 0.1234567890123456;
  const JsonValue parsed = parse_ok(JsonValue(v).dump());
  EXPECT_DOUBLE_EQ(parsed.as_number(), v);
}

TEST(Json, IntegersStayIntegral) {
  EXPECT_EQ(JsonValue(static_cast<std::uint64_t>(1234567)).dump(), "1234567");
  EXPECT_EQ(parse_ok("1234567").as_int(), 1234567);
}

TEST(Json, StringEscaping) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const JsonValue round = parse_ok(JsonValue(nasty).dump());
  EXPECT_EQ(round.as_string(), nasty);
  EXPECT_EQ(json_escape("\""), "\\\"");
  EXPECT_EQ(json_escape("\n"), "\\n");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(parse_ok("\"\\u4e2d\"").as_string(), "\xe4\xb8\xad");  // 中
}

TEST(Json, ArraysAndObjectsRoundTrip) {
  JsonObject obj;
  obj["list"] = JsonArray{JsonValue(1), JsonValue("two"), JsonValue(nullptr)};
  obj["nested"] = JsonObject{{"k", JsonValue(true)}};
  const JsonValue v(obj);
  for (int indent : {0, 2}) {
    const JsonValue round = parse_ok(v.dump(indent));
    EXPECT_EQ(round.at("list").as_array().size(), 3u);
    EXPECT_EQ(round.at("list").as_array()[1].as_string(), "two");
    EXPECT_TRUE(round.at("list").as_array()[2].is_null());
    EXPECT_TRUE(round.at("nested").at("k").as_bool());
  }
}

TEST(Json, PrettyPrintIsIndented) {
  JsonObject obj{{"a", JsonValue(1)}};
  const std::string pretty = JsonValue(obj).dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(Json, ParsesWhitespaceAndEmptyContainers) {
  EXPECT_TRUE(parse_ok(" [ ] ").as_array().empty());
  EXPECT_TRUE(parse_ok("\t{ }\n").as_object().empty());
  EXPECT_EQ(parse_ok("[1 , 2,3 ]").as_array().size(), 3u);
}

TEST(Json, ParseErrorsCarryOffsets) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "[1] trailing", "{\"a\" 1}", "nul"}) {
    const JsonParseResult r = json_parse(bad);
    EXPECT_FALSE(r.ok) << bad;
    EXPECT_FALSE(r.error.empty()) << bad;
  }
}

TEST(Json, TypeMismatchIsContractViolation) {
  const JsonValue v = parse_ok("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), ContractViolation);
  EXPECT_THROW(v.at("a").as_string(), ContractViolation);
  EXPECT_THROW(v.at("missing"), ContractViolation);
  EXPECT_THROW(parse_ok("1.5").as_int(), ContractViolation);
  EXPECT_THROW(parse_ok("-1").as_u32(), ContractViolation);
}

TEST(Json, HasChecksMembership) {
  const JsonValue v = parse_ok("{\"a\": 1}");
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("b"));
  EXPECT_FALSE(parse_ok("3").has("a"));
}

TEST(Json, RejectsNonFiniteNumbersOnDump) {
  EXPECT_THROW(JsonValue(std::numeric_limits<double>::infinity()).dump(),
               ContractViolation);
}

}  // namespace
}  // namespace dmra
