#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

namespace dmra {
namespace {

TEST(ThreadPool, HardwareConcurrencyIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_concurrency(), 1u);
}

TEST(ThreadPool, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);  // single worker: tasks queue up behind each other
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // destructor must run the backlog, not discard it
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelMap, ResultsAreInIndexOrder) {
  const auto square = [](std::size_t i) { return i * i; };
  const auto out = parallel_map(4, 64, square);
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, ResultIndependentOfJobCount) {
  // Ordering independence: the reduction contract the parallel experiment
  // harness relies on — same results for any worker count.
  const auto fn = [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; };
  const auto serial = parallel_map(1, 33, fn);
  for (const std::size_t jobs : {2u, 3u, 8u, 16u}) {
    const auto parallel = parallel_map(jobs, 33, fn);
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ParallelMap, ZeroJobsMeansHardwareConcurrency) {
  const auto fn = [](std::size_t i) { return i + 7; };
  EXPECT_EQ(parallel_map(0, 10, fn), parallel_map(1, 10, fn));
}

TEST(ParallelMap, EmptyRangeYieldsEmptyVector) {
  EXPECT_TRUE(parallel_map(4, 0, [](std::size_t i) { return i; }).empty());
}

TEST(ParallelMap, FirstFailingIndexPropagates) {
  const auto fn = [](std::size_t i) -> int {
    if (i == 5) throw std::invalid_argument("index 5");
    return static_cast<int>(i);
  };
  for (const std::size_t jobs : {1u, 4u}) {
    try {
      parallel_map(jobs, 20, fn);
      FAIL() << "expected invalid_argument, jobs=" << jobs;
    } catch (const std::invalid_argument& e) {
      EXPECT_STREQ(e.what(), "index 5");
    }
  }
}

TEST(ParallelMap, MoveOnlyResultsSupported) {
  const auto out = parallel_map(
      2, 8, [](std::size_t i) { return std::make_unique<std::size_t>(i); });
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(ParallelMap, TaskHooksBracketEveryTaskOnBothPaths) {
  // before(i)/after(i) run around each task on the thread executing it —
  // the obs/shard.hpp contract — on the inline (jobs=1) path and the
  // pooled path alike.
  for (const std::size_t jobs : {1u, 4u}) {
    std::vector<std::atomic<int>> befores(16), afters(16);
    TaskHooks hooks;
    hooks.before = [&](std::size_t i) { befores[i].fetch_add(1); };
    hooks.after = [&](std::size_t i) {
      EXPECT_EQ(befores[i].load(), 1) << "after ran without before, task " << i;
      afters[i].fetch_add(1);
    };
    const auto out = parallel_map(jobs, 16, [](std::size_t i) { return i; }, hooks);
    ASSERT_EQ(out.size(), 16u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(befores[i].load(), 1) << "jobs=" << jobs << " task " << i;
      EXPECT_EQ(afters[i].load(), 1) << "jobs=" << jobs << " task " << i;
    }
  }
}

TEST(ParallelMap, AfterHookRunsWhenTaskThrows) {
  std::atomic<int> afters{0};
  TaskHooks hooks;
  hooks.after = [&](std::size_t) { afters.fetch_add(1); };
  const auto fn = [](std::size_t i) -> int {
    if (i == 2) throw std::runtime_error("task 2");
    return static_cast<int>(i);
  };
  for (const std::size_t jobs : {1u, 4u}) {
    afters.store(0);
    EXPECT_THROW(parallel_map(jobs, 8, fn, hooks), std::runtime_error);
    EXPECT_GE(afters.load(), 1) << "jobs=" << jobs;  // the thrower included
  }
}

}  // namespace
}  // namespace dmra
