#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsAreIndependentOfEachOther) {
  Rng a("topology", 7);
  Rng b("workload", 7);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamIsDeterministic) {
  Rng a("stream", 123), b("stream", 123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ChildStreamsDoNotPerturbParent) {
  Rng parent(9);
  Rng reference(9);
  (void)parent.child("x");  // creating a child must not advance the parent
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent(), reference());
}

TEST(Rng, ChildrenWithDifferentNamesDiffer) {
  Rng parent(9);
  Rng c1 = parent.child("a");
  Rng c2 = parent.child("b");
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1() == c2()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[static_cast<std::size_t>(rng.uniform_int(0, 7))]++;
  for (int c : counts) {
    EXPECT_GT(c, n / 8 - n / 80);  // within ±10% of expectation
    EXPECT_LT(c, n / 8 + n / 80);
  }
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, UniformRealBoundsAndSpread) {
  Rng rng(17);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.0, 1.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, UniformRealCustomRange) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const double v = rng.uniform_real(2e6, 6e6);
    EXPECT_GE(v, 2e6);
    EXPECT_LT(v, 6e6);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), ContractViolation);
  EXPECT_THROW(rng.bernoulli(1.1), ContractViolation);
}

TEST(Rng, IndexBoundsAndContract) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(41);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SerialCorrelationIsSmall) {
  // Lag-1 autocorrelation of uniform draws should be near zero.
  Rng rng(47);
  const int n = 50000;
  double prev = rng.uniform_real(0.0, 1.0);
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double cur = rng.uniform_real(0.0, 1.0);
    sum_xy += prev * cur;
    sum_x += prev;
    sum_x2 += prev * prev;
    prev = cur;
  }
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.02);
}

TEST(Rng, GaussianQuantilesMatchTheNormal) {
  Rng rng(53);
  const int n = 40000;
  int within_1sigma = 0, within_2sigma = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.gaussian(0.0, 1.0);
    if (std::abs(z) < 1.0) ++within_1sigma;
    if (std::abs(z) < 2.0) ++within_2sigma;
  }
  EXPECT_NEAR(static_cast<double>(within_1sigma) / n, 0.6827, 0.01);
  EXPECT_NEAR(static_cast<double>(within_2sigma) / n, 0.9545, 0.01);
}

TEST(Rng, ChiSquareUniformityOverBuckets) {
  Rng rng(59);
  constexpr int kBuckets = 16;
  const int n = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < n; ++i) counts[rng.index(kBuckets)]++;
  double chi2 = 0.0;
  const double expected = static_cast<double>(n) / kBuckets;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 99.9th percentile of chi² with 15 dof ≈ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(Splitmix, KnownFirstValueAdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t v1 = splitmix64_next(s);
  const std::uint64_t v2 = splitmix64_next(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 0u);
}

TEST(HashName, StableAndDiscriminating) {
  EXPECT_EQ(hash_name("abc"), hash_name("abc"));
  EXPECT_NE(hash_name("abc"), hash_name("abd"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

}  // namespace
}  // namespace dmra
