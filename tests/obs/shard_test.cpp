// Tests for parallel-safe sharded tracing (obs/shard.hpp) and the
// shard-merge primitive TraceRecorder::absorb(): the headline guarantee
// is that a traced run's exports — Chrome trace JSON, round CSV, and the
// deterministic metrics snapshot — are byte-identical for every --jobs
// value, because per-task shards merge back in task order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/shard.hpp"
#include "sim/experiment.hpp"
#include "core/dmra_allocator.hpp"
#include "util/json.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

obs::TraceEvent proposal(std::uint32_t ue) {
  obs::TraceEvent e;
  e.kind = obs::EventKind::kProposal;
  e.ue = ue;
  return e;
}

// ---- absorb() --------------------------------------------------------------

TEST(TraceRecorderAbsorb, RestampsSlotAndSeqKeepsRound) {
  obs::TraceRecorder shard;
  shard.set_round(3);
  shard.record(proposal(1));
  obs::RoundRow row;
  row.source = "shard";
  shard.finish_round(row);
  shard.record(proposal(2));  // trailing event, slot 1, no closing row

  obs::TraceRecorder target;
  target.record(proposal(0));
  obs::RoundRow trow;
  trow.source = "target";
  target.finish_round(trow);

  target.absorb(shard);
  ASSERT_EQ(target.events().size(), 3u);
  ASSERT_EQ(target.rows().size(), 2u);
  // Shard's slot-0 event lands in the target's next slot (1), before the
  // shard's row; the trailing event opens slot 2.
  EXPECT_EQ(target.events()[1].slot, 1u);
  EXPECT_EQ(target.events()[1].seq, 0u);
  EXPECT_EQ(target.events()[1].round, 3u);  // producer stamp survives
  EXPECT_EQ(target.events()[2].slot, 2u);
  EXPECT_EQ(target.rows()[1].source, "shard");
}

TEST(TraceRecorderAbsorb, EquivalentToRecordingSeriallyByteForByte) {
  // One recorder records A then B directly; another absorbs them as two
  // shards. Exports must match exactly.
  const auto produce = [](obs::TraceRecorder& rec, std::uint32_t base) {
    rec.set_round(base);
    rec.record(proposal(base));
    rec.record(proposal(base + 1));
    obs::RoundRow row;
    row.source = "core/solver";
    row.proposals = 2;
    rec.finish_round(row);
    rec.metrics().add_counter("bus.rounds", base);
  };
  obs::TraceRecorder serial;
  produce(serial, 10);
  produce(serial, 20);

  obs::TraceRecorder a, b, merged;
  produce(a, 10);
  produce(b, 20);
  merged.absorb(a);
  merged.absorb(b);

  EXPECT_EQ(merged.to_chrome_trace_json(), serial.to_chrome_trace_json());
  EXPECT_EQ(merged.to_round_csv(), serial.to_round_csv());
  EXPECT_EQ(merged.metrics().counter("bus.rounds"), 30u);
}

TEST(TraceRecorderAbsorb, DoesNotBumpGlobalCounterOrProducerTally) {
  obs::TraceRecorder shard;
  shard.record(proposal(1));
  obs::TraceRecorder target;
  const std::uint64_t before = obs::events_recorded_total();
  target.absorb(shard);
  EXPECT_EQ(obs::events_recorded_total(), before);  // already counted once
  EXPECT_EQ(target.take_tally().proposals, 0u);     // merge is not production
}

// ---- TraceShards -----------------------------------------------------------

TEST(ShardedTracing, HooksInstallShardPerTaskAndRestore) {
  obs::TraceRecorder outer;
  obs::ScopedTraceRecorder install(&outer);
  obs::TraceShards shards(2);
  const TaskHooks hooks = shards.hooks();
  hooks.before(0);
  EXPECT_EQ(obs::recorder(), &shards.shard(0));
  obs::recorder()->record(proposal(7));
  hooks.after(0);
  EXPECT_EQ(obs::recorder(), &outer);  // previous recorder restored
  EXPECT_EQ(shards.shard(0).events().size(), 1u);
  EXPECT_TRUE(outer.events().empty());

  shards.merge_into(outer);
  ASSERT_EQ(outer.events().size(), 1u);
  EXPECT_EQ(outer.events()[0].ue, 7u);
}

TEST(ShardedTracing, TracedParallelMapIsPassthroughWhenDisabled) {
  ASSERT_EQ(obs::recorder(), nullptr);
  const std::uint64_t before = obs::events_recorded_total();
  const auto out = obs::traced_parallel_map(4, 8, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[5], 25u);
  EXPECT_EQ(obs::events_recorded_total(), before);
}

// ---- the golden jobs-invariance guarantee ----------------------------------

struct Exports {
  std::string trace;
  std::string csv;
  std::string metrics;
};

/// A traced replicated experiment at the given worker count.
Exports traced_experiment(std::size_t jobs) {
  ExperimentSpec spec;
  spec.title = "sharded";
  spec.x_label = "x";
  spec.xs = {40.0, 60.0};
  spec.seeds = default_seeds(4);
  spec.jobs = jobs;
  spec.make_config = [](double x) {
    ScenarioConfig cfg;
    cfg.num_ues = static_cast<std::size_t>(x);
    return cfg;
  };
  spec.make_allocators = [](double) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    return algos;
  };
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    (void)run_experiment(spec);
  }
  return {rec.to_chrome_trace_json(), rec.to_round_csv(),
          JsonValue(rec.metrics().deterministic_json()).dump(2)};
}

TEST(ShardedTracing, ExportsAreByteIdenticalAcrossJobs) {
  const Exports serial = traced_experiment(1);
  ASSERT_FALSE(serial.trace.empty());
  ASSERT_FALSE(serial.csv.empty());
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{8}}) {
    const Exports parallel = traced_experiment(jobs);
    EXPECT_EQ(parallel.trace, serial.trace) << "trace JSON diverged at jobs=" << jobs;
    EXPECT_EQ(parallel.csv, serial.csv) << "round CSV diverged at jobs=" << jobs;
    EXPECT_EQ(parallel.metrics, serial.metrics) << "metrics diverged at jobs=" << jobs;
  }
}

TEST(ShardedTracing, ParallelRunLosesNoReplication) {
  // Every one of the 2 sweep points x 4 seeds must contribute rows and
  // counters through the shard merge.
  const auto count_rows = [] {
    obs::TraceRecorder rec;
    ExperimentSpec spec;
    spec.title = "counted";
    spec.x_label = "x";
    spec.xs = {40.0};
    spec.seeds = default_seeds(4);
    spec.jobs = 4;
    spec.make_config = [](double x) {
      ScenarioConfig cfg;
      cfg.num_ues = static_cast<std::size_t>(x);
      return cfg;
    };
    spec.make_allocators = [](double) {
      std::vector<AllocatorPtr> algos;
      algos.push_back(std::make_unique<DmraAllocator>());
      return algos;
    };
    {
      obs::ScopedTraceRecorder install(&rec);
      (void)run_experiment(spec);
    }
    return std::pair{rec.rows().size(), rec.metrics().counter("experiment.replications")};
  };
  const auto [rows, replications] = count_rows();
  EXPECT_EQ(replications, 4u);
  EXPECT_GE(rows, 4u);  // at least one traced round per replication
}

// ---- manifests -------------------------------------------------------------

TEST(Manifest, CarriesSchemaProvenanceAndOutputs) {
  obs::MetricsRegistry metrics;
  metrics.add_counter("bus.rounds", 5);
  obs::ManifestInput input;
  input.program = "unit-test";
  input.flags = {{"jobs", "8"}, {"trace", "t.json"}};
  input.scenario_config = scenario_config_json(ScenarioConfig{});
  input.seeds = {1, 2, 3};
  input.jobs = 8;
  input.outputs = {{"trace", "t.json"}};
  input.metrics = &metrics;

  const JsonParseResult parsed = json_parse(obs::manifest_to_json(input));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& root = parsed.value;
  EXPECT_EQ(root.at("schema").as_string(), obs::kManifestSchema);
  EXPECT_EQ(root.at("program").as_string(), "unit-test");
  EXPECT_FALSE(root.at("git").as_string().empty());
  EXPECT_TRUE(root.at("build").has("sanitizers"));
  EXPECT_TRUE(root.at("build").at("audit").is_bool());
  EXPECT_EQ(root.at("flags").at("jobs").as_string(), "8");
  EXPECT_EQ(root.at("seeds").as_array().size(), 3u);
  EXPECT_EQ(root.at("scenario_config").at("num_sps").as_u32(), 5u);
  EXPECT_EQ(root.at("outputs").as_array().at(0).at("kind").as_string(), "trace");
  EXPECT_EQ(root.at("metrics").at("counters").at("bus.rounds").as_u32(), 5u);
}

TEST(ShardedTracing, EmptyShardsMergeAsNoOps) {
  // A fan-out where some (or all) tasks record nothing must merge
  // cleanly: empty shards contribute no events, no rounds, no counters.
  obs::TraceRecorder parent;
  obs::ScopedTraceRecorder install(&parent);
  const std::vector<int> results =
      obs::traced_parallel_map(2, 4, [&](std::size_t task) {
        if (task == 2) {  // only one task says anything
          obs::TraceEvent ev;
          ev.kind = obs::EventKind::kPhase;
          ev.label = "lonely";
          obs::recorder()->record(ev);
        }
        return static_cast<int>(task);
      });
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(parent.events().size(), 1u);
  EXPECT_TRUE(parent.metrics().empty());
}

TEST(ShardedTracing, MoreShardsThanRecordingTasksIsSafe) {
  // TraceShards sizes one shard per task up front; tasks that never run
  // hooks (a drained work queue, an early exit) leave their shards
  // untouched and merge_into must tolerate them.
  obs::TraceRecorder parent;
  obs::ScopedTraceRecorder install(&parent);
  obs::TraceShards shards(4);
  auto hooks = shards.hooks();
  for (const std::size_t task : {0u, 3u}) {  // tasks 1 and 2 never execute
    hooks.before(task);
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kPhase;
    ev.label = task == 0 ? "first" : "last";
    obs::recorder()->record(ev);
    hooks.after(task);
  }
  shards.merge_into(parent);
  ASSERT_EQ(parent.events().size(), 2u);
  EXPECT_EQ(parent.events()[0].label, "first");
  EXPECT_EQ(parent.events()[1].label, "last");
  EXPECT_EQ(parent.events()[1].slot, parent.events()[0].slot)
      << "empty shards must not advance timeline slots";
}

TEST(ShardedTracing, ZeroTaskFanOutIsANoOp) {
  obs::TraceRecorder parent;
  obs::ScopedTraceRecorder install(&parent);
  const auto results =
      obs::traced_parallel_map(4, 0, [](std::size_t task) { return task; });
  EXPECT_TRUE(results.empty());
  EXPECT_TRUE(parent.events().empty());
}

TEST(Manifest, IsDeterministicForIdenticalInputs) {
  obs::ManifestInput input;
  input.program = "p";
  input.seeds = {42};
  EXPECT_EQ(obs::manifest_to_json(input), obs::manifest_to_json(input));
}

TEST(Manifest, EmptyInputStillValidates) {
  const JsonParseResult parsed = json_parse(obs::manifest_to_json({}));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.value.at("metrics").as_object().empty());  // no registry
  EXPECT_TRUE(parsed.value.at("outputs").as_array().empty());
}

}  // namespace
}  // namespace dmra
