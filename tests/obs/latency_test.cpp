// LatencyHistogram (obs/latency): the wall-clock-only measurement channel
// of the serving driver. Bucketing precision, merge, and CSV shape.
#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace dmra::obs {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.percentile_ns(0.5), 0.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.max_ns(), 15u);
  // Below 16 ns every value has its own bucket, so quantiles are exact to
  // within the bucket width of 1.
  EXPECT_LE(h.percentile_ns(0.0), 1.0);
  EXPECT_NEAR(h.percentile_ns(0.5), 8.0, 1.0);
  EXPECT_NEAR(h.percentile_ns(1.0), 15.0, 1.0);
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
  // 16 linear sub-buckets per octave bound the relative error at 1/16.
  for (const std::uint64_t v : {1000ull, 123456ull, 987654321ull}) {
    LatencyHistogram h;
    h.record(v);
    const double p = h.percentile_ns(0.5);
    EXPECT_GE(p, static_cast<double>(v) * (1.0 - 1.0 / 16.0));
    EXPECT_LE(p, static_cast<double>(v) * (1.0 + 1.0 / 16.0));
  }
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v * 37);
  double last = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double p = h.percentile_ns(q);
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_LE(last, static_cast<double>(h.max_ns()) * (1.0 + 1.0 / 16.0));
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(10 + v);
  for (std::uint64_t v = 0; v < 50; ++v) b.record(100000 + v);
  const std::uint64_t bmax = b.max_ns();
  a.merge_from(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_EQ(a.max_ns(), bmax);
  // The upper tail now comes from b's range.
  EXPECT_GT(a.percentile_ns(0.9), 50000.0);
}

TEST(LatencyHistogram, CsvHasHeaderAndOccupiedRowsOnly) {
  LatencyHistogram h;
  h.record(5);
  h.record(5);
  h.record(1000);
  const std::string csv = h.to_csv();
  EXPECT_EQ(csv.rfind("bucket_lo_ns,bucket_hi_ns,count\n", 0), 0u);
  // Header + exactly two occupied buckets.
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
}

TEST(LatencyHistogram, MonotonicClockDoesNotGoBackwards) {
  const std::uint64_t a = monotonic_now_ns();
  const std::uint64_t b = monotonic_now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0u);
}

}  // namespace
}  // namespace dmra::obs
