// LatencyHistogram (obs/latency): the wall-clock-only measurement channel
// of the serving driver. Bucketing precision, merge, and CSV shape.
#include "obs/latency.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace dmra::obs {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.percentile_ns(0.5), 0.0);
}

TEST(LatencyHistogram, EmptyTailPercentilesAreZeroToo) {
  // The serving SLO path reads p50/p99/p999 off possibly-empty windows
  // (a breach check before the first decision lands); every quantile of
  // an empty histogram is 0, not NaN or a sentinel.
  const LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.99), 0.0);
  EXPECT_EQ(h.percentile_ns(0.999), 0.0);
  EXPECT_EQ(h.count_above_ns(0), 0u);
  EXPECT_EQ(h.count_above_ns(1'000'000), 0u);
}

TEST(LatencyHistogram, MergeOfDisjointOctavesIsDeterministic) {
  // Two histograms whose samples occupy disjoint octave ranges merge into
  // the same distribution regardless of merge direction — bucket counts
  // add cell-wise, so the merge is commutative.
  LatencyHistogram low, high;
  for (int i = 0; i < 100; ++i) low.record(20 + static_cast<std::uint64_t>(i % 8));
  for (int i = 0; i < 100; ++i)
    high.record(1'000'000 + static_cast<std::uint64_t>(i) * 512);

  LatencyHistogram ab = low;
  ab.merge_from(high);
  LatencyHistogram ba = high;
  ba.merge_from(low);

  EXPECT_EQ(ab.count(), 200u);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.max_ns(), ba.max_ns());
  EXPECT_EQ(ab.to_csv(), ba.to_csv()) << "merge must be order-independent";
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(ab.percentile_ns(q), ba.percentile_ns(q)) << "q=" << q;
  // The halves stay separable: the median sits in the low octaves, the
  // p99 in the high ones.
  EXPECT_LT(ab.percentile_ns(0.49), 1000.0);
  EXPECT_GT(ab.percentile_ns(0.51), 100'000.0);
}

TEST(LatencyHistogram, CountAboveMatchesSloSemantics) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  // Threshold inside the low cluster's bucket: only whole buckets above
  // it count, so exactly the 10 slow samples qualify.
  EXPECT_EQ(h.count_above_ns(10), 10u);
  EXPECT_EQ(h.count_above_ns(2'000'000), 0u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.max_ns(), 15u);
  // Below 16 ns every value has its own bucket, so quantiles are exact to
  // within the bucket width of 1.
  EXPECT_LE(h.percentile_ns(0.0), 1.0);
  EXPECT_NEAR(h.percentile_ns(0.5), 8.0, 1.0);
  EXPECT_NEAR(h.percentile_ns(1.0), 15.0, 1.0);
}

TEST(LatencyHistogram, RelativeErrorIsBounded) {
  // 16 linear sub-buckets per octave bound the relative error at 1/16.
  for (const std::uint64_t v : {1000ull, 123456ull, 987654321ull}) {
    LatencyHistogram h;
    h.record(v);
    const double p = h.percentile_ns(0.5);
    EXPECT_GE(p, static_cast<double>(v) * (1.0 - 1.0 / 16.0));
    EXPECT_LE(p, static_cast<double>(v) * (1.0 + 1.0 / 16.0));
  }
}

TEST(LatencyHistogram, PercentilesAreMonotone) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v * 37);
  double last = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double p = h.percentile_ns(q);
    EXPECT_GE(p, last);
    last = p;
  }
  EXPECT_LE(last, static_cast<double>(h.max_ns()) * (1.0 + 1.0 / 16.0));
}

TEST(LatencyHistogram, MergeAddsCounts) {
  LatencyHistogram a, b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(10 + v);
  for (std::uint64_t v = 0; v < 50; ++v) b.record(100000 + v);
  const std::uint64_t bmax = b.max_ns();
  a.merge_from(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_EQ(a.max_ns(), bmax);
  // The upper tail now comes from b's range.
  EXPECT_GT(a.percentile_ns(0.9), 50000.0);
}

TEST(LatencyHistogram, CsvHasHeaderAndOccupiedRowsOnly) {
  LatencyHistogram h;
  h.record(5);
  h.record(5);
  h.record(1000);
  const std::string csv = h.to_csv();
  EXPECT_EQ(csv.rfind("bucket_lo_ns,bucket_hi_ns,count\n", 0), 0u);
  // Header + exactly two occupied buckets.
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 3u);
}

TEST(LatencyHistogram, MonotonicClockDoesNotGoBackwards) {
  const std::uint64_t a = monotonic_now_ns();
  const std::uint64_t b = monotonic_now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0u);
}

}  // namespace
}  // namespace dmra::obs
