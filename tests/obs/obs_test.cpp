// Tests for the observability layer (src/obs): the metrics registry, the
// trace recorder, both exporters, the instrumentation hooks in core/ and
// sim/, and the two hard guarantees — byte-identical exports per seed and
// a strict no-op when no recorder is installed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/decentralized.hpp"
#include "core/dmra_allocator.hpp"
#include "core/incremental.hpp"
#include "core/solver.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/round_csv.hpp"
#include "sim/experiment.hpp"
#include "sim/online.hpp"
#include "../test_util.hpp"
#include "util/json.hpp"
#include "workload/generator.hpp"

namespace dmra {
namespace {

using test::MiniScenario;

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, CountersAccumulate) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.counter("x"), 0u);
  m.add_counter("x");
  m.add_counter("x", 4);
  EXPECT_EQ(m.counter("x"), 5u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, GaugesKeepLastValue) {
  obs::MetricsRegistry m;
  m.set_gauge("g", 1.5);
  m.set_gauge("g", -2.0);
  EXPECT_DOUBLE_EQ(m.gauge("g"), -2.0);
  EXPECT_DOUBLE_EQ(m.gauge("absent"), 0.0);
}

TEST(MetricsRegistry, ScopedTimerRecordsCompletedScopes) {
  obs::MetricsRegistry m;
  {
    auto t = m.scoped_timer("scope");
  }
  {
    auto t = m.scoped_timer("scope");
  }
  const auto it = m.timers().find("scope");
  ASSERT_NE(it, m.timers().end());
  EXPECT_EQ(it->second.count, 2u);
}

TEST(MetricsRegistry, DeterministicJsonExcludesTimers) {
  obs::MetricsRegistry m;
  m.add_counter("c", 3);
  m.set_gauge("g", 1.0);
  { auto t = m.scoped_timer("wall"); }
  const JsonObject json = m.deterministic_json();
  EXPECT_TRUE(json.contains("counters"));
  EXPECT_TRUE(json.contains("gauges"));
  // Timers are wall-clock and would break byte-identical golden exports.
  EXPECT_FALSE(json.contains("timers"));
}

// ---- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorder, StampsRoundSlotAndSeq) {
  obs::TraceRecorder rec;
  rec.set_round(7);
  obs::TraceEvent e;
  e.kind = obs::EventKind::kProposal;
  rec.record(e);
  rec.record(e);
  obs::RoundRow row;
  row.source = "test";
  rec.finish_round(row);
  rec.record(e);  // next slot
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.events()[0].round, 7u);
  EXPECT_EQ(rec.events()[0].slot, 0u);
  EXPECT_EQ(rec.events()[0].seq, 0u);
  EXPECT_EQ(rec.events()[1].seq, 1u);
  EXPECT_EQ(rec.events()[2].slot, 1u);
  EXPECT_EQ(rec.events()[2].seq, 0u);
}

TEST(TraceRecorder, TakeTallyCountsAndResets) {
  obs::TraceRecorder rec;
  obs::TraceEvent p;
  p.kind = obs::EventKind::kProposal;
  rec.record(p);
  obs::TraceEvent d;
  d.kind = obs::EventKind::kDecision;
  d.flag = true;
  rec.record(d);
  d.flag = false;
  rec.record(d);
  const obs::EventTally t = rec.take_tally();
  EXPECT_EQ(t.proposals, 1u);
  EXPECT_EQ(t.accepts, 1u);
  EXPECT_EQ(t.rejects, 1u);
  const obs::EventTally empty = rec.take_tally();
  EXPECT_EQ(empty.proposals, 0u);
  EXPECT_EQ(empty.accepts, 0u);
}

TEST(TraceRecorder, InstallIsPerThreadAndScoped) {
  EXPECT_EQ(obs::recorder(), nullptr);
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    EXPECT_EQ(obs::recorder(), &rec);
  }
  EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(TraceRecorder, DisabledPathRecordsNothing) {
  ASSERT_EQ(obs::recorder(), nullptr);
  const std::uint64_t before = obs::events_recorded_total();
  const Scenario scenario = test::two_bs_scenario(6);
  (void)solve_dmra(scenario, {});
  (void)run_decentralized_dmra(scenario);
  EXPECT_EQ(obs::events_recorded_total(), before);
}

TEST(TraceRecorder, PublishBusStatsFillsRegistry) {
  BusStats stats{4, 20, 18};
  stats.messages_dropped = 2;
  obs::MetricsRegistry m;
  obs::publish_bus_stats(stats, m);
  EXPECT_EQ(m.counter("bus.rounds"), 4u);
  EXPECT_EQ(m.counter("bus.messages_sent"), 20u);
  EXPECT_EQ(m.counter("bus.messages_delivered"), 18u);
  EXPECT_EQ(m.counter("bus.messages_dropped"), 2u);
}

TEST(TraceEvent, EnumsRenderAsText) {
  EXPECT_EQ(to_string(obs::EventKind::kProposal), "propose");
  EXPECT_EQ(to_string(obs::EventKind::kTrimEviction), "trim-eviction");
  EXPECT_EQ(to_string(obs::DecisionReason::kLostTiebreak), "lost-tiebreak");
  EXPECT_EQ(to_string(obs::DecisionReason::kTrimmed), "trimmed");
}

// ---- Instrumentation: direct solver ---------------------------------------

TEST(SolverTracing, EmitsProposalsDecisionsRowsAndTermination) {
  const Scenario scenario = test::two_bs_scenario(6);
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    (void)solve_dmra(scenario, {});
  }
  std::size_t proposals = 0, decisions = 0, terminations = 0;
  for (const obs::TraceEvent& e : rec.events()) {
    if (e.kind == obs::EventKind::kProposal) ++proposals;
    if (e.kind == obs::EventKind::kDecision) ++decisions;
    if (e.kind == obs::EventKind::kTermination) ++terminations;
  }
  EXPECT_GE(proposals, 6u);   // every UE proposes at least once
  EXPECT_GE(decisions, 6u);   // every proposal gets a decision
  EXPECT_EQ(terminations, 1u);
  ASSERT_FALSE(rec.rows().empty());
  for (const obs::RoundRow& row : rec.rows()) {
    EXPECT_EQ(row.source, "core/solver");
    EXPECT_EQ(row.proposals, row.accepts + row.rejects);
  }
  // The run converged: the last event says so and carries the round count.
  const obs::TraceEvent& last = rec.events().back();
  EXPECT_EQ(last.kind, obs::EventKind::kTermination);
  EXPECT_TRUE(last.flag);
  EXPECT_EQ(last.value, rec.rows().size());
}

TEST(SolverTracing, CumulativeProfitMatchesFinalAllocation) {
  const Scenario scenario = test::two_bs_scenario(8);
  obs::TraceRecorder rec;
  DmraResult result;
  {
    obs::ScopedTraceRecorder install(&rec);
    result = solve_dmra(scenario, {});
  }
  ASSERT_FALSE(rec.rows().empty());
  EXPECT_NEAR(rec.rows().back().cumulative_profit,
              total_profit(scenario, result.allocation), 1e-9);
}

TEST(SolverTracing, LostTiebreakCarriesLosingKey) {
  // Two same-service UEs in range of a single-service-slot BS: one wins
  // the round-0 tiebreak, the other must be recorded as the loser with
  // its own key (in particular its UE id).
  MiniScenario ms;
  const SpId sp = ms.add_sp();
  ms.add_bs(sp, {0.0, 0.0});
  const UeId u0 = ms.add_ue(sp, {30.0, 0.0}, ServiceId{0});
  const UeId u1 = ms.add_ue(sp, {40.0, 0.0}, ServiceId{0});
  const Scenario scenario = ms.build();

  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    (void)solve_dmra(scenario, {});
  }
  std::size_t losses = 0;
  for (const obs::TraceEvent& e : rec.events()) {
    if (e.kind != obs::EventKind::kDecision ||
        e.reason != obs::DecisionReason::kLostTiebreak)
      continue;
    ++losses;
    EXPECT_FALSE(e.flag);
    EXPECT_TRUE(e.ue == u0.value || e.ue == u1.value);
    EXPECT_EQ(e.key.ue, e.ue);  // the loser carries its *own* key
  }
  EXPECT_GE(losses, 1u);
}

TEST(SolverTracing, TrimEvictionEmitsEventAndTrimmedDecision) {
  // Two different-service winners whose combined RRB demand overshoots the
  // budget. Probe the RRB demand first, then rebuild with a budget that
  // admits either UE alone but not both.
  const auto build = [](std::uint32_t rrbs) {
    MiniScenario ms;
    const SpId sp = ms.add_sp();
    ms.add_bs(sp, {0.0, 0.0}, /*cru_per_service=*/100, rrbs);
    ms.add_ue(sp, {30.0, 0.0}, ServiceId{0});
    ms.add_ue(sp, {30.0, 1.0}, ServiceId{1});
    return ms.build();
  };
  const Scenario probe = build(1000);
  const std::uint32_t n0 = probe.link(UeId{0}, BsId{0}).n_rrbs;
  const std::uint32_t n1 = probe.link(UeId{1}, BsId{0}).n_rrbs;
  ASSERT_GT(n0, 0u);
  ASSERT_GT(n1, 0u);
  const Scenario scenario = build(std::max(n0, n1));  // room for one, not both

  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    (void)solve_dmra(scenario, {});
  }
  std::size_t evictions = 0, trimmed_decisions = 0;
  for (const obs::TraceEvent& e : rec.events()) {
    if (e.kind == obs::EventKind::kTrimEviction) {
      ++evictions;
      EXPECT_GT(e.value, 0u);  // the evicted RRB demand
    }
    if (e.kind == obs::EventKind::kDecision &&
        e.reason == obs::DecisionReason::kTrimmed)
      ++trimmed_decisions;
  }
  EXPECT_GE(evictions, 1u);
  EXPECT_EQ(evictions, trimmed_decisions);
}

// ---- Instrumentation: decentralized runtime --------------------------------

TEST(DecentralizedTracing, EmitsBroadcastsRowsAndBusMetrics) {
  const Scenario scenario = test::two_bs_scenario(6);
  obs::TraceRecorder rec;
  DecentralizedResult result;
  {
    obs::ScopedTraceRecorder install(&rec);
    result = run_decentralized_dmra(scenario);
  }
  std::size_t broadcasts = 0;
  for (const obs::TraceEvent& e : rec.events())
    if (e.kind == obs::EventKind::kBroadcast) ++broadcasts;
  EXPECT_GE(broadcasts, scenario.num_bss());  // at least the bootstrap
  ASSERT_FALSE(rec.rows().empty());
  std::uint64_t traced_messages = 0;
  for (const obs::RoundRow& row : rec.rows()) {
    EXPECT_EQ(row.source, "core/decentralized");
    traced_messages += row.messages;
  }
  // Every post-bootstrap message lands in some round's tally.
  EXPECT_LE(traced_messages, result.bus.messages_sent);
  EXPECT_EQ(rec.metrics().counter("bus.messages_sent"), result.bus.messages_sent);
  EXPECT_EQ(rec.metrics().counter("bus.rounds"), result.bus.rounds);
}

TEST(DecentralizedTracing, MatchesSolverDecisionCounts) {
  // The protocol is proven equivalent to the direct solver; the traces
  // must agree on the aggregate accept/reject counts per run.
  const Scenario scenario = test::two_bs_scenario(8);
  obs::TraceRecorder direct, protocol;
  {
    obs::ScopedTraceRecorder install(&direct);
    (void)solve_dmra(scenario, {});
  }
  {
    obs::ScopedTraceRecorder install(&protocol);
    (void)run_decentralized_dmra(scenario);
  }
  const auto totals = [](const obs::TraceRecorder& rec) {
    std::pair<std::uint64_t, std::uint64_t> t{0, 0};
    for (const obs::RoundRow& row : rec.rows()) {
      t.first += row.accepts;
      t.second += row.rejects;
    }
    return t;
  };
  EXPECT_EQ(totals(direct), totals(protocol));
}

// ---- Instrumentation: incremental, online, experiment ----------------------

TEST(IncrementalTracing, ReportsCarryOverCounters) {
  const Scenario scenario = test::two_bs_scenario(6);
  const Allocation previous = solve_dmra(scenario, {}).allocation;
  obs::TraceRecorder rec;
  IncrementalResult result;
  {
    obs::ScopedTraceRecorder install(&rec);
    result = solve_incremental_dmra(scenario, previous, {});
  }
  EXPECT_EQ(rec.metrics().counter("incremental.kept"), result.kept);
  EXPECT_EQ(rec.metrics().counter("incremental.released"), result.released);
  EXPECT_EQ(rec.metrics().counter("incremental.invalidated"), result.invalidated);
  bool saw_phase = false;
  for (const obs::TraceEvent& e : rec.events())
    if (e.kind == obs::EventKind::kPhase && e.label == "core/incremental:carry-over")
      saw_phase = true;
  EXPECT_TRUE(saw_phase);
}

TEST(OnlineTracing, EmitsOneRowPerEpoch) {
  OnlineConfig config;
  config.scenario.num_ues = 40;
  config.epochs = 3;
  const DmraAllocator allocator;
  obs::TraceRecorder rec;
  OnlineResult result;
  {
    obs::ScopedTraceRecorder install(&rec);
    OnlineSimulator sim(config, allocator);
    result = sim.run();
  }
  std::vector<const obs::RoundRow*> online_rows;
  for (const obs::RoundRow& row : rec.rows())
    if (row.source == "sim/online") online_rows.push_back(&row);
  ASSERT_EQ(online_rows.size(), config.epochs);
  for (std::size_t e = 0; e < online_rows.size(); ++e) {
    EXPECT_EQ(online_rows[e]->round, e);
    EXPECT_EQ(online_rows[e]->proposals,
              online_rows[e]->accepts + online_rows[e]->rejects);
  }
  EXPECT_NEAR(online_rows.back()->cumulative_profit, result.cumulative_profit, 1e-9);
  EXPECT_EQ(rec.metrics().counter("online.epochs"), config.epochs);
}

TEST(ExperimentTracing, CountsSweepPointsAndReplications) {
  ExperimentSpec spec;
  spec.title = "traced";
  spec.x_label = "x";
  spec.xs = {40.0, 60.0};
  spec.seeds = default_seeds(2);
  spec.jobs = 1;  // shard_test.cpp covers the parallel jobs>1 merge path
  spec.make_config = [](double x) {
    ScenarioConfig cfg;
    cfg.num_ues = static_cast<std::size_t>(x);
    return cfg;
  };
  spec.make_allocators = [](double) {
    std::vector<AllocatorPtr> algos;
    algos.push_back(std::make_unique<DmraAllocator>());
    return algos;
  };
  obs::TraceRecorder rec;
  {
    obs::ScopedTraceRecorder install(&rec);
    (void)run_experiment(spec);
  }
  EXPECT_EQ(rec.metrics().counter("experiment.sweep_points"), 2u);
  EXPECT_EQ(rec.metrics().counter("experiment.replications"), 4u);
  ASSERT_FALSE(rec.rows().empty());  // the replications traced through
}

// ---- Exporters -------------------------------------------------------------

/// Runs one seeded decentralized run into a fresh recorder.
void trace_reference_run(obs::TraceRecorder& rec) {
  ScenarioConfig cfg;
  cfg.num_ues = 60;
  const Scenario scenario = generate_scenario(cfg, /*seed=*/5);
  obs::ScopedTraceRecorder install(&rec);
  (void)run_decentralized_dmra(scenario);
}

TEST(Exporters, ChromeTraceIsValidAndCarriesSchema) {
  obs::TraceRecorder rec;
  trace_reference_run(rec);
  const std::string json = rec.to_chrome_trace_json();
  const JsonParseResult parsed = json_parse(json);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& root = parsed.value;
  EXPECT_EQ(root.at("otherData").at("schema").as_string(), "dmra-trace/1");
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = root.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  std::size_t slices = 0, instants = 0, counters = 0, meta = 0;
  for (const JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    if (ph == "X") {
      ++slices;
      EXPECT_GT(e.at("dur").as_number(), 0.0);
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
    } else if (ph == "M") {
      ++meta;
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(slices, rec.rows().size());
  EXPECT_EQ(instants, rec.events().size());
  EXPECT_GT(counters, 0u);
  EXPECT_GT(meta, 0u);
}

TEST(Exporters, RoundCsvHasFixedHeaderAndOneLinePerRow) {
  obs::TraceRecorder rec;
  trace_reference_run(rec);
  const std::string csv = rec.to_round_csv();
  ASSERT_FALSE(csv.empty());
  const std::size_t first_newline = csv.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_EQ(csv.substr(0, first_newline), obs::round_csv_header());
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, rec.rows().size() + 1);  // header + one line per round
}

TEST(Exporters, SameSeedProducesByteIdenticalExports) {
  obs::TraceRecorder a, b;
  trace_reference_run(a);
  trace_reference_run(b);
  EXPECT_EQ(a.to_chrome_trace_json(), b.to_chrome_trace_json());
  EXPECT_EQ(a.to_round_csv(), b.to_round_csv());
}

TEST(Exporters, DifferentSeedsProduceDifferentTraces) {
  const auto trace_with_seed = [](std::uint64_t seed) {
    obs::TraceRecorder rec;
    ScenarioConfig cfg;
    cfg.num_ues = 60;
    const Scenario scenario = generate_scenario(cfg, seed);
    obs::ScopedTraceRecorder install(&rec);
    (void)run_decentralized_dmra(scenario);
    return rec.to_round_csv();
  };
  EXPECT_NE(trace_with_seed(5), trace_with_seed(6));
}

}  // namespace
}  // namespace dmra
