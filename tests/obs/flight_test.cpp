// FlightRecorder contract tests: ring semantics, per-agent slot stamps,
// first-wins trigger freeze, --dump-on, shard absorb determinism (jobs
// byte-identity), windowed metrics, the Prometheus exposition, and the
// dmra-postmortem/1 artifact (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/exposition.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/shard.hpp"
#include "util/json.hpp"

namespace dmra::obs {
namespace {

TraceEvent phase_event(std::string_view label, std::uint64_t value = 0) {
  TraceEvent ev;
  ev.kind = EventKind::kPhase;
  ev.label = label;
  ev.value = value;
  return ev;
}

TraceEvent fault_event(std::uint32_t bs, std::uint64_t value = 0) {
  TraceEvent ev;
  ev.kind = EventKind::kFault;
  ev.label = "bs-crash";
  ev.bs = bs;
  ev.value = value;
  return ev;
}

TEST(FlightRecorder, RingKeepsNewestAndCountsDropped) {
  FlightRecorder::Config cfg;
  cfg.event_capacity = 4;
  FlightRecorder fr(cfg);
  for (std::uint64_t i = 0; i < 10; ++i) fr.record(phase_event("p", i));
  EXPECT_EQ(fr.events_seen(), 10u);
  EXPECT_EQ(fr.events_retained(), 4u);
  EXPECT_EQ(fr.events_dropped(), 6u);
  const std::vector<TraceEvent> ring = fr.ring_events();
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].seq, 6u + i) << "oldest-first in global stream order";
    EXPECT_EQ(ring[i].value, 6u + i);
  }
}

TEST(FlightRecorder, RoundRingRollsIndependently) {
  FlightRecorder::Config cfg;
  cfg.round_capacity = 2;
  FlightRecorder fr(cfg);
  for (std::uint64_t r = 0; r < 5; ++r) {
    RoundRow row;
    row.source = "test";
    row.round = r;
    fr.finish_round(row);
  }
  EXPECT_EQ(fr.rounds_seen(), 5u);
  EXPECT_EQ(fr.rounds_retained(), 2u);
  const std::vector<RoundRow> rows = fr.ring_rounds();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].round, 3u);
  EXPECT_EQ(rows[1].round, 4u);
}

TEST(FlightRecorder, StampsRoundAndPerAgentSlots) {
  FlightRecorder fr;
  fr.reserve_agents(/*num_ues=*/4, /*num_bss=*/2);
  fr.set_round(7);
  fr.record(fault_event(/*bs=*/1));
  fr.record(fault_event(/*bs=*/1));
  TraceEvent ue_ev = phase_event("ue");
  ue_ev.ue = 3;
  fr.record(ue_ev);
  fr.record(ue_ev);
  const std::vector<TraceEvent> ring = fr.ring_events();
  ASSERT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring[0].round, 7u);
  // BS 1's own sequence: 0, 1. UE 3's own sequence: 0, 1.
  EXPECT_EQ(ring[0].slot, 0u);
  EXPECT_EQ(ring[1].slot, 1u);
  EXPECT_EQ(ring[2].slot, 0u);
  EXPECT_EQ(ring[3].slot, 1u);
}

TEST(FlightRecorder, FirstTriggerWinsAndFreezesTheRing) {
  FlightRecorder::Config cfg;
  cfg.event_capacity = 8;
  FlightRecorder fr(cfg);
  for (std::uint64_t i = 0; i < 3; ++i) fr.record(phase_event("pre", i));
  fr.trigger("bs-crash", /*round=*/5, /*bs=*/2);
  for (std::uint64_t i = 0; i < 4; ++i) fr.record(phase_event("post", i));
  fr.trigger("audit-violation", 6);  // later trigger only counts

  EXPECT_TRUE(fr.triggered());
  EXPECT_EQ(fr.trigger_reason(), "bs-crash");
  EXPECT_EQ(fr.triggers(), 2u);
  EXPECT_EQ(fr.events_seen(), 7u);

  const auto parsed = json_parse(fr.postmortem_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue& doc = parsed.value;
  EXPECT_EQ(doc.at("schema").as_string(), kPostmortemSchema);
  EXPECT_EQ(doc.at("trigger").at("reason").as_string(), "bs-crash");
  EXPECT_EQ(doc.at("trigger").at("round").as_int(), 5);
  EXPECT_EQ(doc.at("trigger").at("bs").as_int(), 2);
  EXPECT_TRUE(doc.at("trigger").at("deterministic").as_bool());
  EXPECT_EQ(doc.at("trigger").at("count").as_int(), 2);
  EXPECT_EQ(doc.at("events_after_trigger").as_int(), 4);
  // The dumped events are the frozen pre-trigger snapshot, not the live
  // ring (which kept rolling).
  const JsonArray& events = doc.at("events").as_array();
  ASSERT_EQ(events.size(), 3u);
  for (const JsonValue& ev : events)
    EXPECT_EQ(ev.at("label").as_string(), "pre");
}

TEST(FlightRecorder, UntriggeredDumpUsesLiveRingAndNullTrigger) {
  FlightRecorder fr;
  fr.record(phase_event("only"));
  const auto parsed = json_parse(fr.postmortem_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.value.at("trigger").is_null());
  EXPECT_EQ(parsed.value.at("events_after_trigger").as_int(), 0);
  ASSERT_EQ(parsed.value.at("events").as_array().size(), 1u);
}

TEST(FlightRecorder, DumpOnRoundFiresOnceAtArmedRound) {
  FlightRecorder fr;
  fr.arm_dump_on_round(5);
  ASSERT_TRUE(fr.dump_on_armed());
  fr.set_round(4);
  EXPECT_FALSE(fr.triggered());
  fr.set_round(5);
  ASSERT_TRUE(fr.triggered());
  EXPECT_EQ(fr.trigger_reason(), "dump-on-round");
  fr.set_round(6);
  EXPECT_EQ(fr.triggers(), 1u) << "the predicate fires once, not per round";
}

TEST(FlightRecorder, FaultContextAppearsInDump) {
  FlightRecorder fr;
  fr.set_fault_context("crashes=1,crash-round=5");
  const auto parsed = json_parse(fr.postmortem_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.at("fault_context").as_string(), "crashes=1,crash-round=5");
}

TEST(FlightRecorder, AbsorbRestampsAsOneContinuousStream) {
  FlightRecorder parent;
  parent.reserve_agents(2, 2);
  parent.record(fault_event(/*bs=*/0));

  FlightRecorder shard;
  shard.reserve_agents(2, 2);
  shard.record(fault_event(/*bs=*/0));
  shard.record(fault_event(/*bs=*/1));
  shard.metrics().add_counter("x", 3);

  parent.absorb(shard);
  EXPECT_EQ(parent.events_seen(), 3u);
  EXPECT_EQ(parent.metrics().counter("x"), 3u);
  const std::vector<TraceEvent> ring = parent.ring_events();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].seq, 0u);
  EXPECT_EQ(ring[1].seq, 1u);
  EXPECT_EQ(ring[2].seq, 2u);
  // BS 0 already had one event in the parent, so the shard's BS-0 event
  // continues that agent's numbering; BS 1 starts fresh.
  EXPECT_EQ(ring[1].slot, 1u);
  EXPECT_EQ(ring[2].slot, 0u);
}

TEST(FlightRecorder, AbsorbAdoptsFirstShardTrigger) {
  FlightRecorder parent;
  FlightRecorder a;
  a.record(phase_event("a"));
  FlightRecorder b;
  b.record(phase_event("b"));
  b.trigger("bs-crash", 9, /*bs=*/4);
  parent.absorb(a);
  parent.absorb(b);
  ASSERT_TRUE(parent.triggered());
  EXPECT_EQ(parent.trigger_reason(), "bs-crash");
  const auto parsed = json_parse(parent.postmortem_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  // b froze with 1 event; after absorb the stamp offsets place it after
  // a's event in the merged stream.
  const JsonArray& events = parsed.value.at("events").as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at("label").as_string(), "b");
  EXPECT_EQ(events[0].at("seq").as_int(), 1);
}

// The jobs-invariance contract: a fan-out through traced_parallel_map
// produces byte-identical postmortems for every --jobs value, because
// shards absorb in task order regardless of execution interleaving.
std::string postmortem_across_jobs(std::size_t jobs) {
  FlightRecorder fr;
  fr.reserve_agents(8, 8);
  ScopedFlightRecorder scope(&fr);
  traced_parallel_map(jobs, 6, [&](std::size_t task) {
    FlightRecorder* shard = flight();
    EXPECT_NE(shard, nullptr);
    shard->set_round(task);
    shard->record(fault_event(static_cast<std::uint32_t>(task % 3),
                              static_cast<std::uint64_t>(task)));
    RoundRow row;
    row.source = "flight-test";
    row.round = task;
    shard->finish_round(row);
    shard->metrics().add_counter("tasks");
    return task;
  });
  return fr.postmortem_json();
}

TEST(FlightRecorder, PostmortemIsByteIdenticalAcrossJobs) {
  const std::string serial = postmortem_across_jobs(1);
  EXPECT_EQ(serial, postmortem_across_jobs(2));
  EXPECT_EQ(serial, postmortem_across_jobs(8));
  const auto parsed = json_parse(serial);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.at("events").as_array().size(), 6u);
  EXPECT_EQ(parsed.value.at("rounds").as_array().size(), 6u);
  EXPECT_EQ(parsed.value.at("metrics").at("counters").at("tasks").as_int(), 6);
}

TEST(FlightRecorder, FlightOnlyFanOutLeavesTraceRecorderDisabled) {
  // With a flight recorder but NO trace recorder installed, tasks must
  // still see recorder() == nullptr: the per-proposal trace
  // instrumentation stays off, and the process-wide trace counter stands
  // still (the perf_report no-op check depends on this).
  ASSERT_EQ(recorder(), nullptr);
  FlightRecorder fr;
  ScopedFlightRecorder scope(&fr);
  const std::uint64_t before = events_recorded_total();
  traced_parallel_map(2, 4, [&](std::size_t task) {
    EXPECT_EQ(recorder(), nullptr);
    EXPECT_NE(flight(), nullptr);
    flight()->record(phase_event("quiet"));
    return task;
  });
  EXPECT_EQ(fr.events_seen(), 4u);
  EXPECT_EQ(events_recorded_total(), before);
}

TEST(FlightRecorder, ShardsInheritDumpOnPredicate) {
  FlightRecorder fr;
  fr.arm_dump_on_round(2);
  ScopedFlightRecorder scope(&fr);
  traced_parallel_map(2, 4, [&](std::size_t task) {
    flight()->set_round(task);
    return task;
  });
  ASSERT_TRUE(fr.triggered());
  EXPECT_EQ(fr.trigger_reason(), "dump-on-round");
}

TEST(FlightRecorder, TraceJobsNoticeNamesBothFlags) {
  const std::string notice = trace_jobs_notice();
  EXPECT_NE(notice.find("--trace"), std::string::npos);
  EXPECT_NE(notice.find("--jobs"), std::string::npos);
  EXPECT_NE(notice.find("byte-identical"), std::string::npos);
}

TEST(MetricsWindows, RollupsCloseOnOrdinalChange) {
  MetricsRegistry m;
  m.begin_windows(4);
  ASSERT_TRUE(m.windows_armed());
  for (std::uint64_t tick = 0; tick < 10; ++tick) {
    m.window_tick(tick);
    m.add_counter("events");
    m.set_gauge("active", static_cast<double>(tick));
  }
  m.flush_windows();
  const std::vector<MetricsWindow>& w = m.windows();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].first_tick, 0u);
  EXPECT_EQ(w[0].last_tick, 3u);
  EXPECT_EQ(w[0].counter_deltas.at("events"), 4u);
  EXPECT_EQ(w[0].gauge_last.at("active"), 3.0);
  EXPECT_EQ(w[0].gauge_max.at("active"), 3.0);
  EXPECT_EQ(w[1].counter_deltas.at("events"), 4u);
  EXPECT_EQ(w[2].first_tick, 8u);
  EXPECT_EQ(w[2].last_tick, 9u);
  EXPECT_EQ(w[2].counter_deltas.at("events"), 2u);
}

TEST(MetricsWindows, OnlyMovedCountersAppearInDeltas) {
  MetricsRegistry m;
  m.add_counter("idle", 5);
  m.begin_windows(2);
  m.window_tick(0);
  m.add_counter("busy");
  m.flush_windows();
  ASSERT_EQ(m.windows().size(), 1u);
  const MetricsWindow& w = m.windows()[0];
  EXPECT_EQ(w.counter_deltas.count("idle"), 0u);
  EXPECT_EQ(w.counter_deltas.at("busy"), 1u);
}

TEST(MetricsWindows, RegressingTickStartsANewWindow) {
  // A second run restarting its round count must not merge into the
  // previous run's window: ordinal CHANGE closes, in either direction.
  MetricsRegistry m;
  m.begin_windows(8);
  m.window_tick(9);   // opens ordinal 1
  m.add_counter("c");
  m.window_tick(0);   // ordinal 0 != 1: closes, opens the restarted run's window
  m.add_counter("c");
  m.flush_windows();
  ASSERT_EQ(m.windows().size(), 2u);
  EXPECT_EQ(m.windows()[0].first_tick, 9u);
  EXPECT_EQ(m.windows()[1].first_tick, 0u);
}

TEST(MetricsWindows, CollectIncludesVirtualCloseWithoutMutating) {
  MetricsRegistry m;
  m.begin_windows(4);
  m.window_tick(0);
  m.add_counter("c");
  const std::vector<MetricsWindow> seen = m.collect_windows();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].counter_deltas.at("c"), 1u);
  EXPECT_TRUE(m.windows().empty()) << "collect_windows must not close for real";
}

TEST(MetricsWindows, MergeAppendsShardWindowsInOrder) {
  MetricsRegistry parent;
  parent.begin_windows(2);
  parent.window_tick(0);
  parent.add_counter("p");
  parent.flush_windows();
  MetricsRegistry shard;
  shard.begin_windows(2);
  shard.window_tick(0);
  shard.add_counter("s");
  parent.merge_from(shard);
  ASSERT_EQ(parent.windows().size(), 2u);
  EXPECT_EQ(parent.windows()[0].counter_deltas.at("p"), 1u);
  EXPECT_EQ(parent.windows()[1].counter_deltas.at("s"), 1u);
}

TEST(Exposition, RendersCountersGaugesAndLabels) {
  MetricsRegistry m;
  m.add_counter("churn.arrivals", 12);
  m.add_counter("shard.rounds{shard=\"3\"}", 7);
  m.set_gauge("churn.active", 5.0);
  const std::string text = to_prometheus_text(m);
  EXPECT_NE(text.find("# TYPE dmra_churn_arrivals counter\n"), std::string::npos);
  EXPECT_NE(text.find("dmra_churn_arrivals 12\n"), std::string::npos);
  EXPECT_NE(text.find("dmra_shard_rounds{shard=\"3\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("dmra_churn_active 5\n"), std::string::npos);
}

TEST(Exposition, WindowSeriesCarryWindowLabels) {
  MetricsRegistry m;
  m.begin_windows(2);
  m.window_tick(0);
  m.add_counter("events", 3);
  m.window_tick(2);
  m.add_counter("events", 1);
  m.flush_windows();
  const std::string text = to_prometheus_text(m);
  EXPECT_NE(text.find("dmra_events_delta{window=\"0\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("dmra_events_delta{window=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dmra_window_first_tick{window=\"0\"} 0\n"), std::string::npos);
}

TEST(Exposition, TimersAreExcluded) {
  MetricsRegistry m;
  m.record_timer("secret.wall", 1234);
  m.add_counter("visible");
  const std::string text = to_prometheus_text(m);
  EXPECT_EQ(text.find("secret"), std::string::npos)
      << "wall-clock timers must stay out of the machine-readable surface";
  EXPECT_NE(text.find("dmra_visible 1\n"), std::string::npos);
}

TEST(Exposition, OutputIsDeterministic) {
  const auto build = [] {
    MetricsRegistry m;
    m.add_counter("b.two", 2);
    m.add_counter("a.one", 1);
    m.set_gauge("z", 0.5);
    return to_prometheus_text(m);
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace dmra::obs
