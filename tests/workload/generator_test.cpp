#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/require.hpp"

namespace dmra {
namespace {

TEST(Generator, PaperDefaultsProduceThePaperTopology) {
  const Scenario s = generate_scenario(ScenarioConfig{}, 1);
  EXPECT_EQ(s.num_sps(), 5u);
  EXPECT_EQ(s.num_bss(), 25u);
  EXPECT_EQ(s.num_services(), 6u);
  EXPECT_EQ(s.num_ues(), 500u);
  for (const BaseStation& b : s.bss()) EXPECT_EQ(b.num_rrbs, 55u);  // 10 MHz / 180 kHz
}

TEST(Generator, AllDrawnValuesRespectConfiguredRanges) {
  const ScenarioConfig cfg;
  const Scenario s = generate_scenario(cfg, 3);
  for (const BaseStation& b : s.bss()) {
    for (std::uint32_t c : b.cru_capacity) {
      EXPECT_GE(c, cfg.cru_capacity_min);
      EXPECT_LE(c, cfg.cru_capacity_max);
    }
    EXPECT_TRUE(cfg.area().contains(b.position));
  }
  for (const UserEquipment& u : s.ues()) {
    EXPECT_GE(u.cru_demand, cfg.cru_demand_min);
    EXPECT_LE(u.cru_demand, cfg.cru_demand_max);
    EXPECT_GE(u.rate_demand_bps, cfg.rate_demand_min_bps);
    EXPECT_LT(u.rate_demand_bps, cfg.rate_demand_max_bps);
    EXPECT_TRUE(cfg.area().contains(u.position));
    EXPECT_LT(u.sp.idx(), cfg.num_sps);
    EXPECT_LT(u.service.idx(), cfg.num_services);
  }
}

TEST(Generator, DeterministicPerSeed) {
  const ScenarioConfig cfg;
  const Scenario a = generate_scenario(cfg, 42);
  const Scenario b = generate_scenario(cfg, 42);
  ASSERT_EQ(a.num_ues(), b.num_ues());
  for (std::size_t i = 0; i < a.num_ues(); ++i) {
    const UeId u{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(a.ue(u).position, b.ue(u).position);
    EXPECT_EQ(a.ue(u).cru_demand, b.ue(u).cru_demand);
    EXPECT_EQ(a.ue(u).service, b.ue(u).service);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const ScenarioConfig cfg;
  const Scenario a = generate_scenario(cfg, 1);
  const Scenario b = generate_scenario(cfg, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.num_ues() && !any_diff; ++i) {
    const UeId u{static_cast<std::uint32_t>(i)};
    if (!(a.ue(u).position == b.ue(u).position)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, UeCountDoesNotPerturbTopology) {
  ScenarioConfig small, large;
  small.num_ues = 100;
  large.num_ues = 1000;
  const Scenario a = generate_scenario(small, 7);
  const Scenario b = generate_scenario(large, 7);
  for (std::size_t i = 0; i < a.num_bss(); ++i) {
    const BsId bs{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(a.bs(bs).position, b.bs(bs).position);
    EXPECT_EQ(a.bs(bs).cru_capacity, b.bs(bs).cru_capacity);
  }
}

TEST(Generator, ServiceSubsetHosting) {
  ScenarioConfig cfg;
  cfg.num_services = 10;
  cfg.services_per_bs = 4;
  const Scenario s = generate_scenario(cfg, 5);
  for (const BaseStation& b : s.bss()) {
    std::size_t hosted = 0;
    for (std::uint32_t c : b.cru_capacity)
      if (c > 0) ++hosted;
    EXPECT_EQ(hosted, 4u);
  }
}

TEST(Generator, RandomPlacementStaysInArea) {
  ScenarioConfig cfg;
  cfg.placement = PlacementMethod::kRandom;
  const Scenario s = generate_scenario(cfg, 11);
  for (const BaseStation& b : s.bss()) EXPECT_TRUE(cfg.area().contains(b.position));
}

TEST(Generator, RoundRobinOwnershipSpreadsSps) {
  const Scenario s = generate_scenario(ScenarioConfig{}, 1);
  std::set<std::uint32_t> sps;
  for (const BaseStation& b : s.bss()) sps.insert(b.sp.value);
  EXPECT_EQ(sps.size(), 5u);
}

TEST(Generator, InterferenceDerivationPopulatesChannel) {
  ScenarioConfig cfg;
  cfg.interference_activity_factor = 0.05;
  const Scenario with = generate_scenario(cfg, 3);
  const Scenario without = generate_scenario(ScenarioConfig{}, 3);
  EXPECT_GT(with.channel().interference_psd_mw_hz, 0.0);
  EXPECT_DOUBLE_EQ(without.channel().interference_psd_mw_hz, 0.0);
  // Interference lowers every link's SINR.
  EXPECT_LT(with.link(UeId{0}, BsId{0}).sinr, without.link(UeId{0}, BsId{0}).sinr);
}

TEST(Generator, MostUesSeeSeveralCandidates) {
  const Scenario s = generate_scenario(ScenarioConfig{}, 9);
  std::size_t multi = 0;
  for (std::size_t i = 0; i < s.num_ues(); ++i)
    if (s.coverage_count(UeId{static_cast<std::uint32_t>(i)}) >= 2) ++multi;
  // The densely-deployed premise: nearly everyone sees ≥ 2 BSs.
  EXPECT_GT(multi, s.num_ues() * 9 / 10);
}

TEST(Generator, HotspotsClusterThePopulation) {
  ScenarioConfig uniform;
  uniform.num_ues = 2000;
  ScenarioConfig hotspots = uniform;
  hotspots.ue_distribution = UeDistribution::kHotspots;
  hotspots.num_hotspots = 2;
  hotspots.hotspot_sigma_m = 80.0;
  hotspots.hotspot_fraction = 1.0;

  // Mean pairwise-ish spread proxy: mean distance to the area center.
  auto spread = [](const Scenario& s) {
    const Point c{600.0, 600.0};
    double mean_sq = 0.0;
    Point centroid{0.0, 0.0};
    for (const UserEquipment& u : s.ues()) {
      centroid.x += u.position.x / static_cast<double>(s.num_ues());
      centroid.y += u.position.y / static_cast<double>(s.num_ues());
    }
    (void)c;
    for (const UserEquipment& u : s.ues()) mean_sq += distance_sq(u.position, centroid);
    return mean_sq / static_cast<double>(s.num_ues());
  };
  const double su = spread(generate_scenario(uniform, 3));
  const double sh = spread(generate_scenario(hotspots, 3));
  EXPECT_LT(sh, su * 0.7);  // clustered population is markedly tighter
}

TEST(Generator, HotspotPositionsStayInArea) {
  ScenarioConfig cfg;
  cfg.num_ues = 1000;
  cfg.ue_distribution = UeDistribution::kHotspots;
  cfg.hotspot_sigma_m = 400.0;  // wide clusters → clamping exercised
  const Scenario s = generate_scenario(cfg, 5);
  for (const UserEquipment& u : s.ues()) EXPECT_TRUE(cfg.area().contains(u.position));
}

TEST(Generator, HotspotFractionZeroIsUniformishSpread) {
  ScenarioConfig cfg;
  cfg.num_ues = 500;
  cfg.ue_distribution = UeDistribution::kHotspots;
  cfg.hotspot_fraction = 0.0;  // everyone falls back to the uniform draw
  const Scenario s = generate_scenario(cfg, 7);
  int quadrants[4] = {0, 0, 0, 0};
  for (const UserEquipment& u : s.ues())
    quadrants[(u.position.x > 600 ? 1 : 0) + (u.position.y > 600 ? 2 : 0)]++;
  for (int q : quadrants) EXPECT_GT(q, 60);
}

TEST(Generator, ZipfSkewsServicePopularity) {
  ScenarioConfig cfg;
  cfg.num_ues = 3000;
  cfg.service_popularity = ServicePopularity::kZipf;
  cfg.zipf_s = 1.2;
  const Scenario s = generate_scenario(cfg, 9);
  std::vector<int> counts(cfg.num_services, 0);
  for (const UserEquipment& u : s.ues()) counts[u.service.idx()]++;
  // Rank 0 clearly dominates and popularity decreases overall.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[0], 2 * counts[5]);
}

TEST(Generator, UniformPopularityUnchangedByZipfKnob) {
  // The uniform branch must keep the historical draw sequence.
  ScenarioConfig a, b;
  a.num_ues = b.num_ues = 100;
  b.zipf_s = 3.0;  // irrelevant while popularity stays uniform
  const Scenario sa = generate_scenario(a, 11);
  const Scenario sb = generate_scenario(b, 11);
  for (std::size_t i = 0; i < sa.num_ues(); ++i) {
    const UeId u{static_cast<std::uint32_t>(i)};
    EXPECT_EQ(sa.ue(u).service, sb.ue(u).service);
    EXPECT_EQ(sa.ue(u).position, sb.ue(u).position);
  }
}

TEST(Generator, ConfigContracts) {
  {
    // Zero UEs is a valid (degenerate) deployment: the serving driver
    // builds empty-arrival timelines from it.
    ScenarioConfig cfg;
    cfg.num_ues = 0;
    const Scenario s = generate_scenario(cfg, 1);
    EXPECT_EQ(s.num_ues(), 0u);
    EXPECT_GT(s.num_bss(), 0u);
  }
  {
    ScenarioConfig cfg;
    cfg.services_per_bs = 9;  // > num_services
    EXPECT_THROW(generate_scenario(cfg, 1), ContractViolation);
  }
  {
    ScenarioConfig cfg;
    cfg.cru_demand_min = 0;
    EXPECT_THROW(generate_scenario(cfg, 1), ContractViolation);
  }
  {
    ScenarioConfig cfg;
    cfg.cru_capacity_min = 200;  // > max
    EXPECT_THROW(generate_scenario(cfg, 1), ContractViolation);
  }
}

}  // namespace
}  // namespace dmra
